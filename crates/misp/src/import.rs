//! Importers: normalized feed records and STIX bundles → MISP events.
//!
//! "Relying on MISP, all incoming cIoCs will be automatically converted
//! into their MISP format representation for being stored correctly"
//! (Section III-B1).

use cais_feeds::{FeedRecord, ThreatCategory};
use cais_stix::prelude::*;

use crate::attribute::{AttributeCategory, MispAttribute};
use crate::event::{MispEvent, ThreatLevel};
use crate::tag::Tag;

/// Converts a batch of feed records (typically one aggregated cIoC
/// cluster) into a single MISP event.
///
/// # Examples
///
/// ```
/// use cais_common::{Observable, ObservableKind, Timestamp};
/// use cais_feeds::{FeedRecord, ThreatCategory};
/// use cais_misp::import::event_from_records;
///
/// let record = FeedRecord::new(
///     Observable::new(ObservableKind::Domain, "evil.example"),
///     ThreatCategory::MalwareDomain,
///     "feed-a",
///     Timestamp::EPOCH,
/// );
/// let event = event_from_records("cluster-1", &[record]);
/// assert_eq!(event.attributes.len(), 1);
/// assert_eq!(event.attributes[0].attr_type, "domain");
/// ```
pub fn event_from_records(info: impl Into<String>, records: &[FeedRecord]) -> MispEvent {
    let mut event = MispEvent::new(info);
    if let Some(first) = records.first() {
        event.date = records
            .iter()
            .map(|r| r.seen_at)
            .min()
            .unwrap_or(first.seen_at);
        event.add_tag(Tag::new(format!("cais:category=\"{}\"", first.category)));
        event.threat_level = match first.category {
            ThreatCategory::Ransomware | ThreatCategory::VulnerabilityExploitation => {
                ThreatLevel::High
            }
            ThreatCategory::CommandAndControl | ThreatCategory::MalwareDomain => {
                ThreatLevel::Medium
            }
            _ => ThreatLevel::Low,
        };
    }
    for record in records {
        let attr_type = record.observable.kind().misp_attribute_type();
        let category = match attr_type {
            "md5" | "sha1" | "sha256" => AttributeCategory::PayloadDelivery,
            "vulnerability" => AttributeCategory::ExternalAnalysis,
            _ => AttributeCategory::NetworkActivity,
        };
        let mut attribute = MispAttribute::new(attr_type, category, record.observable.value())
            .with_timestamp(record.seen_at);
        if let Some(description) = &record.description {
            attribute.comment = description.clone();
        }
        attribute = attribute.with_tag(Tag::new(format!("source:{}", record.source)));
        event.add_attribute(attribute);
        if let Some(cve) = &record.cve {
            // Carry the CVE explicitly even when the observable itself is
            // not CVE-typed (e.g. a URL distributing an exploit).
            if record.observable.value() != cve {
                event.add_attribute(
                    MispAttribute::new("vulnerability", AttributeCategory::ExternalAnalysis, cve)
                        .with_timestamp(record.seen_at),
                );
            }
        }
    }
    event
}

/// Converts a STIX bundle into one MISP event per paper-relevant SDO,
/// carrying names, patterns and external references as attributes.
pub fn events_from_stix(bundle: &Bundle) -> Vec<MispEvent> {
    let mut events = Vec::new();
    for object in bundle.objects() {
        let mut event = match object {
            StixObject::Vulnerability(v) => {
                let mut event = MispEvent::new(format!("STIX vulnerability: {}", v.name));
                event.threat_level = ThreatLevel::High;
                if let Some(cve) = v.cve_id() {
                    event.add_attribute(MispAttribute::new(
                        "vulnerability",
                        AttributeCategory::ExternalAnalysis,
                        cve,
                    ));
                }
                if let Some(description) = &v.description {
                    event.add_attribute(MispAttribute::new(
                        "text",
                        AttributeCategory::Other,
                        description,
                    ));
                }
                event
            }
            StixObject::Indicator(indicator) => {
                let mut event = MispEvent::new(format!(
                    "STIX indicator: {}",
                    indicator.name.as_deref().unwrap_or("unnamed")
                ));
                event.add_attribute(MispAttribute::new(
                    "text",
                    AttributeCategory::NetworkActivity,
                    &indicator.pattern,
                ));
                event
            }
            StixObject::Malware(malware) => {
                let mut event = MispEvent::new(format!("STIX malware: {}", malware.name));
                if let Some(category) = malware.category() {
                    event.add_tag(Tag::new(format!("malware:{category}")));
                }
                event
            }
            _ => continue,
        };
        event.date = object.created();
        for reference in &object.common().external_references {
            if let Some(url) = &reference.url {
                event.add_attribute(MispAttribute::new(
                    "link",
                    AttributeCategory::ExternalAnalysis,
                    url,
                ));
            }
        }
        events.push(event);
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::{Observable, ObservableKind, Timestamp};

    #[test]
    fn records_become_typed_attributes() {
        let records = vec![
            FeedRecord::new(
                Observable::new(ObservableKind::Ipv4, "203.0.113.9"),
                ThreatCategory::CommandAndControl,
                "feed-a",
                Timestamp::from_unix_secs(100),
            ),
            FeedRecord::new(
                Observable::new(ObservableKind::Md5, "d41d8cd98f00b204e9800998ecf8427e"),
                ThreatCategory::CommandAndControl,
                "feed-b",
                Timestamp::from_unix_secs(50),
            )
            .with_description("dropper"),
        ];
        let event = event_from_records("c2 cluster", &records);
        assert_eq!(event.attributes.len(), 2);
        assert_eq!(event.attributes[0].attr_type, "ip-dst");
        assert_eq!(event.attributes[1].attr_type, "md5");
        assert_eq!(event.attributes[1].comment, "dropper");
        // Event date is the earliest record.
        assert_eq!(event.date, Timestamp::from_unix_secs(50));
        assert_eq!(event.threat_level, ThreatLevel::Medium);
    }

    #[test]
    fn cve_side_attribute_added() {
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Url, "http://exploit.example/kit"),
            ThreatCategory::VulnerabilityExploitation,
            "feed",
            Timestamp::EPOCH,
        )
        .with_cve("CVE-2017-9805");
        let event = event_from_records("exploit kit", &[record]);
        assert_eq!(event.attributes.len(), 2);
        assert!(event
            .attributes
            .iter()
            .any(|a| a.attr_type == "vulnerability" && a.value == "CVE-2017-9805"));
    }

    #[test]
    fn stix_vulnerability_import() {
        let vuln = Vulnerability::builder("CVE-2017-9805")
            .description("struts RCE")
            .external_reference(ExternalReference::cve("CVE-2017-9805"))
            .build();
        let bundle = Bundle::new(vec![vuln.into()]);
        let events = events_from_stix(&bundle);
        assert_eq!(events.len(), 1);
        let event = &events[0];
        assert!(event
            .attributes
            .iter()
            .any(|a| a.attr_type == "vulnerability"));
        assert!(event.attributes.iter().any(|a| a.attr_type == "link"));
    }

    #[test]
    fn unsupported_sdos_are_skipped() {
        let identity = Identity::builder("ACME").build();
        let bundle = Bundle::new(vec![identity.into()]);
        assert!(events_from_stix(&bundle).is_empty());
    }
}
