//! Errors for the MISP-like platform.

use std::fmt;

/// Errors produced by store, API and sync operations.
#[derive(Debug)]
pub enum MispError {
    /// The referenced event does not exist.
    EventNotFound {
        /// The missing event id.
        event_id: u64,
    },
    /// The attribute type is not in the known-type registry.
    UnknownAttributeType {
        /// The rejected type name.
        attr_type: String,
    },
    /// An attribute value failed type-specific validation.
    InvalidAttributeValue {
        /// The attribute type.
        attr_type: String,
        /// The offending value.
        value: String,
    },
    /// A JSON encoding/decoding failure during import/export.
    Json(serde_json::Error),
    /// An I/O failure while streaming an export into a sink.
    Io(std::io::Error),
}

impl fmt::Display for MispError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MispError::EventNotFound { event_id } => write!(f, "event {event_id} not found"),
            MispError::UnknownAttributeType { attr_type } => {
                write!(f, "unknown attribute type {attr_type:?}")
            }
            MispError::InvalidAttributeValue { attr_type, value } => {
                write!(f, "value {value:?} is not valid for type {attr_type:?}")
            }
            MispError::Json(err) => write!(f, "MISP JSON error: {err}"),
            MispError::Io(err) => write!(f, "MISP export I/O error: {err}"),
        }
    }
}

impl std::error::Error for MispError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MispError::Json(err) => Some(err),
            MispError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for MispError {
    fn from(err: serde_json::Error) -> Self {
        MispError::Json(err)
    }
}

impl From<std::io::Error> for MispError {
    fn from(err: std::io::Error) -> Self {
        MispError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MispError::EventNotFound { event_id: 9 }
            .to_string()
            .contains('9'));
        assert!(MispError::UnknownAttributeType {
            attr_type: "frob".into()
        }
        .to_string()
        .contains("frob"));
    }
}
