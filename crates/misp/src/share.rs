//! The zero-clone sharing fast path: cached incremental export.
//!
//! Real MISP deployments spend most of their sharing cycles
//! re-serializing unchanged events for every pull. This module puts an
//! LRU-bounded byte cache between the store and every share seam
//! (export API, TAXII pages, sync pushes, feed pulls):
//!
//! - **Keying** — `(event_uuid, event_version, format)`. The store
//!   bumps an event's version on every update, so a key pins exactly
//!   one event body; export modules are deterministic, so cached bytes
//!   equal a fresh serialization byte-for-byte.
//! - **Invalidation** — never explicit. Stale entries simply stop
//!   being requested (their version is gone) and age out of the LRU.
//!   Whole-store assembled outputs (the pull concatenation and the
//!   combined STIX bundle) are memoized under the store *generation*:
//!   any later insert/update moves the generation and the memo is
//!   rebuilt from per-event cached bytes — the same generation-guard
//!   pattern the reduce memos use.
//! - **Determinism** — the combined STIX bundle is assembled from
//!   per-event object fragments rendered independently (optionally in
//!   parallel) and concatenated in event-id order, producing the exact
//!   bytes of serializing one combined [`cais_stix::Bundle`]; serial
//!   and parallel assembly are byte-identical by construction.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cais_common::Uuid;
use cais_stix::StixId;
use cais_telemetry::{Counter, Gauge, Registry, Tracer};
use parking_lot::{Mutex, RwLock};

use crate::error::MispError;
use crate::export::{stix2, ExportRegistry};
use crate::store::{MispStore, StoreSnapshot, VersionedEvent};

/// Entry kind: a complete single-event document in some format.
const KIND_DOCUMENT: u8 = 0;
/// Entry kind: an event's STIX objects rendered as a pretty-printed
/// bundle fragment (see [`ShareExporter::stix_bundle`]).
const KIND_STIX_FRAGMENT: u8 = 1;
/// Format slot for entries that do not belong to a registry format.
const FORMAT_NONE: u32 = u32::MAX;

/// Assembled-output kind: all event documents joined by newlines.
const ASSEMBLED_PULL: u8 = 0;
/// Assembled-output kind: the combined STIX bundle.
const ASSEMBLED_STIX: u8 = 1;
/// Assembled-output kind: published-only event documents joined by
/// newlines (the export surface indicator decay prunes).
const ASSEMBLED_PULL_PUBLISHED: u8 = 2;

std::thread_local! {
    /// Per-thread byte buffer reused across document serializations.
    static DOC_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
    /// Per-thread text buffer reused across fragment renders.
    static FRAGMENT_SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    uuid: Uuid,
    version: u64,
    format: u32,
    kind: u8,
}

/// The LRU state: entry map plus a tick-ordered recency index. Touch
/// and evict are both `O(log n)` via the [`BTreeMap`].
#[derive(Debug, Default)]
struct Lru {
    entries: HashMap<CacheKey, (Arc<[u8]>, u64)>,
    recency: BTreeMap<u64, CacheKey>,
    tick: u64,
    bytes: u64,
    capacity: usize,
}

impl Lru {
    fn get(&mut self, key: &CacheKey) -> Option<Arc<[u8]>> {
        let (bytes, tick) = self.entries.get_mut(key)?;
        let bytes = Arc::clone(bytes);
        let old = *tick;
        self.tick += 1;
        *tick = self.tick;
        self.recency.remove(&old);
        self.recency.insert(self.tick, *key);
        Some(bytes)
    }

    /// Inserts an entry, returning how many entries were evicted.
    fn insert(&mut self, key: CacheKey, bytes: Arc<[u8]>) -> u64 {
        if let Some((old_bytes, old_tick)) = self.entries.remove(&key) {
            self.recency.remove(&old_tick);
            self.bytes -= old_bytes.len() as u64;
        }
        let mut evicted = 0;
        while self.entries.len() >= self.capacity.max(1) {
            let Some((&oldest_tick, &oldest_key)) = self.recency.iter().next() else {
                break;
            };
            self.recency.remove(&oldest_tick);
            if let Some((old_bytes, _)) = self.entries.remove(&oldest_key) {
                self.bytes -= old_bytes.len() as u64;
            }
            evicted += 1;
        }
        self.tick += 1;
        self.bytes += bytes.len() as u64;
        self.entries.insert(key, (bytes, self.tick));
        self.recency.insert(self.tick, key);
        evicted
    }
}

/// A whole-store assembled output pinned to the generation it was
/// built from.
#[derive(Debug, Clone)]
struct Assembled {
    generation: u64,
    bytes: Arc<[u8]>,
}

/// Telemetry handles for an instrumented exporter.
#[derive(Debug)]
struct ShareMetrics {
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    cache_entries: Gauge,
    cache_bytes: Gauge,
    bytes_total: Counter,
    assembled_hits: Counter,
    assembled_misses: Counter,
}

impl ShareMetrics {
    fn new(registry: &Registry) -> Self {
        ShareMetrics {
            cache_hits: registry.counter("share_cache_hits_total"),
            cache_misses: registry.counter("share_cache_misses_total"),
            cache_evictions: registry.counter("share_cache_evictions_total"),
            cache_entries: registry.gauge("share_cache_entries"),
            cache_bytes: registry.gauge("share_cache_bytes"),
            bytes_total: registry.counter("share_bytes_total"),
            assembled_hits: registry.counter("share_assembled_hits_total"),
            assembled_misses: registry.counter("share_assembled_misses_total"),
        }
    }
}

/// Point-in-time cache counters, for tests and benches that run
/// without a telemetry registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShareCacheStats {
    /// Per-event byte-cache hits.
    pub hits: u64,
    /// Per-event byte-cache misses (each one serialized an event).
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Live entries.
    pub entries: u64,
    /// Live cached bytes.
    pub bytes: u64,
    /// Whole-store assembled outputs served from the generation memo.
    pub assembled_hits: u64,
    /// Whole-store assembled outputs rebuilt.
    pub assembled_misses: u64,
}

/// The cached, streaming export front-end: an [`ExportRegistry`] plus
/// the per-event byte cache and the generation-guarded assembled-output
/// memos. One instance serves a store's whole share surface.
pub struct ShareExporter {
    registry: ExportRegistry,
    cache: Mutex<Lru>,
    assembled: Mutex<HashMap<(u32, u8), Assembled>>,
    metrics: RwLock<Option<ShareMetrics>>,
    tracer: RwLock<Option<Tracer>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    assembled_hits: AtomicU64,
    assembled_misses: AtomicU64,
}

impl Default for ShareExporter {
    fn default() -> Self {
        ShareExporter::new(ExportRegistry::with_builtins())
    }
}

impl std::fmt::Debug for ShareExporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShareExporter")
            .field("formats", &self.registry.formats())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ShareExporter {
    /// Default per-event cache bound. Each entry is one serialized
    /// event document (a few KiB), so the default bounds the cache to
    /// tens of MiB — small against the store it shadows.
    pub const DEFAULT_CAPACITY: usize = 32 * 1024;

    /// Wraps an export registry with the default cache bound.
    pub fn new(registry: ExportRegistry) -> Self {
        ShareExporter::with_capacity(registry, ShareExporter::DEFAULT_CAPACITY)
    }

    /// Wraps an export registry with an explicit cache bound (entries).
    pub fn with_capacity(registry: ExportRegistry, capacity: usize) -> Self {
        ShareExporter {
            registry,
            cache: Mutex::new(Lru {
                capacity: capacity.max(1),
                ..Lru::default()
            }),
            assembled: Mutex::new(HashMap::new()),
            metrics: RwLock::new(None),
            tracer: RwLock::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            assembled_hits: AtomicU64::new(0),
            assembled_misses: AtomicU64::new(0),
        }
    }

    /// Attaches telemetry: cache traffic surfaces as
    /// `share_cache_{hits,misses,evictions}_total`, the live footprint
    /// as `share_cache_entries`/`share_cache_bytes` gauges, served
    /// output as `share_bytes_total`, and the whole-store memos as
    /// `share_assembled_{hits,misses}_total`.
    pub fn instrument(&self, registry: &Registry) {
        *self.metrics.write() = Some(ShareMetrics::new(registry));
    }

    /// Attaches a causal tracer: cache *fills* (the serialization work)
    /// record `share_serialize` spans chained onto the event's linked
    /// trace, so a pull of a freshly ingested event stays inside the
    /// ingress span tree. Cache hits stay untraced — they do no work
    /// worth a span.
    pub fn set_tracer(&self, tracer: &Tracer) {
        *self.tracer.write() = Some(tracer.clone());
    }

    fn tracer(&self) -> Option<Tracer> {
        self.tracer.read().clone()
    }

    /// The wrapped registry, read-only.
    pub fn registry(&self) -> &ExportRegistry {
        &self.registry
    }

    /// Mutable access to the registry, for installing custom modules.
    /// Drops all cached bytes: resolved format indexes (the cache key
    /// space) are only stable while the module list is.
    pub fn exports_mut(&mut self) -> &mut ExportRegistry {
        {
            let mut cache = self.cache.lock();
            cache.entries.clear();
            cache.recency.clear();
            cache.bytes = 0;
        }
        self.assembled.lock().clear();
        self.publish_footprint();
        &mut self.registry
    }

    /// Current cache counters.
    pub fn stats(&self) -> ShareCacheStats {
        let (entries, bytes) = {
            let cache = self.cache.lock();
            (cache.entries.len() as u64, cache.bytes)
        };
        ShareCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
            assembled_hits: self.assembled_hits.load(Ordering::Relaxed),
            assembled_misses: self.assembled_misses.load(Ordering::Relaxed),
        }
    }

    /// Serializes one event (by id) in the named format, serving cached
    /// bytes when the event has not changed since they were produced.
    ///
    /// Mirrors the classic registry contract: unknown ids error,
    /// unknown formats yield `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::EventNotFound`] for unknown ids and
    /// conversion errors from the module.
    pub fn export_event_bytes(
        &self,
        store: &MispStore,
        id: u64,
        format: &str,
    ) -> Result<Option<Arc<[u8]>>, MispError> {
        let versioned = store
            .versioned(id)
            .ok_or(MispError::EventNotFound { event_id: id })?;
        let Some(index) = self.registry.resolve(format) else {
            return Ok(None);
        };
        let bytes = self.document(index, &versioned)?;
        self.count_served(bytes.len());
        Ok(Some(bytes))
    }

    /// Serializes one already-read event handle, through the cache.
    ///
    /// # Errors
    ///
    /// Returns conversion errors from the module; unknown formats yield
    /// `Ok(None)`.
    pub fn versioned_document(
        &self,
        format: &str,
        versioned: &VersionedEvent,
    ) -> Result<Option<Arc<[u8]>>, MispError> {
        let Some(index) = self.registry.resolve(format) else {
            return Ok(None);
        };
        let bytes = self.document(index, versioned)?;
        self.count_served(bytes.len());
        Ok(Some(bytes))
    }

    /// A full pull: every stored event serialized in the named format,
    /// in id order, joined by single newlines. Unchanged events are
    /// served from the byte cache; an unchanged *store* is served from
    /// the generation memo without touching per-event entries at all.
    /// `workers > 1` serializes cold events in parallel — the output
    /// bytes are identical regardless of worker count.
    ///
    /// # Errors
    ///
    /// Returns conversion errors; unknown formats yield `Ok(None)`.
    pub fn pull(
        &self,
        store: &MispStore,
        format: &str,
        workers: usize,
    ) -> Result<Option<Arc<[u8]>>, MispError> {
        let Some(index) = self.registry.resolve(format) else {
            return Ok(None);
        };
        let snapshot = store.snapshot();
        let memo_key = (index as u32, ASSEMBLED_PULL);
        if let Some(bytes) = self.assembled_lookup(memo_key, snapshot.generation()) {
            self.count_served(bytes.len());
            return Ok(Some(bytes));
        }

        let documents = self.documents_for(index, &snapshot, workers)?;
        let total: usize =
            documents.iter().map(|d| d.len()).sum::<usize>() + documents.len().saturating_sub(1);
        let mut out: Vec<u8> = Vec::with_capacity(total);
        for (i, doc) in documents.iter().enumerate() {
            if i > 0 {
                out.push(b'\n');
            }
            out.extend_from_slice(doc);
        }
        let bytes: Arc<[u8]> = Arc::from(out);
        self.assembled_store(memo_key, snapshot.generation(), &bytes);
        self.count_served(bytes.len());
        Ok(Some(bytes))
    }

    /// A published-only pull: like [`ShareExporter::pull`] but covering
    /// only events whose `published` flag is set — the share surface the
    /// decay lifecycle prunes. An event that decays below the expiry
    /// threshold is unpublished by the sweep (one store update), which
    /// bumps its version *and* the store generation: the per-event byte
    /// cache stops being asked for the stale version and this memo
    /// rebuilds, so no pull ever serves a decayed-out event from cache.
    ///
    /// # Errors
    ///
    /// Returns conversion errors; unknown formats yield `Ok(None)`.
    pub fn pull_published(
        &self,
        store: &MispStore,
        format: &str,
    ) -> Result<Option<Arc<[u8]>>, MispError> {
        let Some(index) = self.registry.resolve(format) else {
            return Ok(None);
        };
        let snapshot = store.snapshot();
        let memo_key = (index as u32, ASSEMBLED_PULL_PUBLISHED);
        if let Some(bytes) = self.assembled_lookup(memo_key, snapshot.generation()) {
            self.count_served(bytes.len());
            return Ok(Some(bytes));
        }

        let mut out: Vec<u8> = Vec::new();
        for versioned in snapshot.iter().filter(|v| v.event.published) {
            if !out.is_empty() {
                out.push(b'\n');
            }
            let doc = self.document(index, versioned)?;
            out.extend_from_slice(&doc);
        }
        let bytes: Arc<[u8]> = Arc::from(out);
        self.assembled_store(memo_key, snapshot.generation(), &bytes);
        self.count_served(bytes.len());
        Ok(Some(bytes))
    }

    /// The combined STIX 2.0 bundle of the whole store: every event's
    /// objects (indicators, vulnerabilities, report) in event-id order
    /// inside a single bundle whose id derives from the exact set of
    /// `(event uuid, version)` pairs it covers.
    ///
    /// Assembly is fragment-based: each event's objects are rendered as
    /// an independent pretty-printed fragment (cached per event
    /// version, rendered in parallel when `workers > 1`) and
    /// concatenated in a single ordered pass. The result is
    /// byte-identical to serializing one [`cais_stix::Bundle`] holding
    /// the same objects — and identical across worker counts.
    ///
    /// # Errors
    ///
    /// Returns conversion errors from object serialization.
    pub fn stix_bundle(&self, store: &MispStore, workers: usize) -> Result<Arc<[u8]>, MispError> {
        let snapshot = store.snapshot();
        let memo_key = (FORMAT_NONE, ASSEMBLED_STIX);
        if let Some(bytes) = self.assembled_lookup(memo_key, snapshot.generation()) {
            self.count_served(bytes.len());
            return Ok(bytes);
        }

        let fragments = self.map_events(&snapshot, workers, |versioned| {
            self.stix_fragment(versioned)
        })?;

        let id = combined_bundle_id(&snapshot);
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"type\": \"bundle\",\n  \"id\": \"{id}\",\n  \"spec_version\": \"2.0\",\n  \"objects\": ["
        );
        if fragments.is_empty() {
            out.push_str("]\n}");
        } else {
            for (i, fragment) in fragments.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                // Fragments are UTF-8 by construction (JSON text).
                out.push_str(std::str::from_utf8(fragment).expect("fragment is JSON text"));
            }
            out.push_str("\n  ]\n}");
        }
        let bytes: Arc<[u8]> = Arc::from(out.into_bytes());
        self.assembled_store(memo_key, snapshot.generation(), &bytes);
        self.count_served(bytes.len());
        Ok(bytes)
    }

    /// Serializes every event of a snapshot in id order (no joining).
    /// Shared by [`ShareExporter::pull`] and the TAXII seam.
    ///
    /// # Errors
    ///
    /// Returns the first conversion error encountered.
    pub fn documents_for(
        &self,
        index: usize,
        snapshot: &StoreSnapshot,
        workers: usize,
    ) -> Result<Vec<Arc<[u8]>>, MispError> {
        self.map_events(snapshot, workers, |versioned| {
            self.document(index, versioned)
        })
    }

    /// One event document through the cache, by resolved format index.
    ///
    /// # Errors
    ///
    /// Returns conversion errors from the module.
    pub fn document(
        &self,
        index: usize,
        versioned: &VersionedEvent,
    ) -> Result<Arc<[u8]>, MispError> {
        let key = CacheKey {
            uuid: versioned.event.uuid,
            version: versioned.version,
            format: index as u32,
            kind: KIND_DOCUMENT,
        };
        if let Some(bytes) = self.cache_lookup(&key) {
            return Ok(bytes);
        }
        let mut span = self.tracer().map(|t| {
            t.follow(
                &versioned.event.uuid.to_string(),
                "share",
                "share_serialize",
            )
        });
        let module = self
            .registry
            .module(index)
            .ok_or_else(|| MispError::Io(std::io::Error::other("stale export module index")))?;
        let bytes: Arc<[u8]> = DOC_SCRATCH.with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.clear();
            module.write_into(&versioned.event, &mut *buf)?;
            Ok::<_, MispError>(Arc::from(buf.as_slice()))
        })?;
        if let Some(span) = span.as_mut() {
            span.field("bytes", bytes.len());
        }
        self.cache_store(key, &bytes);
        Ok(bytes)
    }

    /// One event's STIX objects as a pretty bundle fragment: each
    /// object rendered at nesting level 2 behind a `\n    ` prefix,
    /// comma-separated — exactly the bytes those objects occupy inside
    /// a serialized bundle's `objects` array.
    fn stix_fragment(&self, versioned: &VersionedEvent) -> Result<Arc<[u8]>, MispError> {
        let key = CacheKey {
            uuid: versioned.event.uuid,
            version: versioned.version,
            format: FORMAT_NONE,
            kind: KIND_STIX_FRAGMENT,
        };
        if let Some(bytes) = self.cache_lookup(&key) {
            return Ok(bytes);
        }
        let bytes: Arc<[u8]> = FRAGMENT_SCRATCH.with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.clear();
            for (i, object) in stix2::to_objects(&versioned.event).iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                buf.push_str("\n    ");
                serde_json::to_value(object)?.write_json_string_pretty_at(&mut buf, 2);
            }
            Ok::<_, MispError>(Arc::from(buf.as_bytes()))
        })?;
        self.cache_store(key, &bytes);
        Ok(bytes)
    }

    /// Maps `f` over a snapshot's events in id order, splitting the
    /// snapshot into contiguous chunks across `workers` scoped threads
    /// when asked. Chunk outputs are re-joined in chunk order, so the
    /// result is independent of the worker count.
    fn map_events<F>(
        &self,
        snapshot: &StoreSnapshot,
        workers: usize,
        f: F,
    ) -> Result<Vec<Arc<[u8]>>, MispError>
    where
        F: Fn(&VersionedEvent) -> Result<Arc<[u8]>, MispError> + Sync,
    {
        let events = snapshot.events();
        let workers = workers.clamp(1, events.len().max(1));
        if workers == 1 {
            return events.iter().map(&f).collect();
        }
        let chunk_size = events.len().div_ceil(workers);
        let chunks: Vec<&[VersionedEvent]> = events.chunks(chunk_size).collect();
        let results: Vec<Result<Vec<Arc<[u8]>>, MispError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("share worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(events.len());
        for chunk in results {
            out.extend(chunk?);
        }
        Ok(out)
    }

    fn cache_lookup(&self, key: &CacheKey) -> Option<Arc<[u8]>> {
        let hit = self.cache.lock().get(key);
        let metrics = self.metrics.read();
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = metrics.as_ref() {
                m.cache_hits.inc();
            }
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = metrics.as_ref() {
                m.cache_misses.inc();
            }
        }
        hit
    }

    fn cache_store(&self, key: CacheKey, bytes: &Arc<[u8]>) {
        let (evicted, entries, live_bytes) = {
            let mut cache = self.cache.lock();
            let evicted = cache.insert(key, Arc::clone(bytes));
            (evicted, cache.entries.len() as i64, cache.bytes as i64)
        };
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        if let Some(m) = self.metrics.read().as_ref() {
            if evicted > 0 {
                m.cache_evictions.add(evicted);
            }
            m.cache_entries.set(entries);
            m.cache_bytes.set(live_bytes);
        }
    }

    fn assembled_lookup(&self, key: (u32, u8), generation: u64) -> Option<Arc<[u8]>> {
        let hit = {
            let assembled = self.assembled.lock();
            assembled
                .get(&key)
                .filter(|a| a.generation == generation)
                .map(|a| Arc::clone(&a.bytes))
        };
        let metrics = self.metrics.read();
        if hit.is_some() {
            self.assembled_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = metrics.as_ref() {
                m.assembled_hits.inc();
            }
        } else {
            self.assembled_misses.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = metrics.as_ref() {
                m.assembled_misses.inc();
            }
        }
        hit
    }

    fn assembled_store(&self, key: (u32, u8), generation: u64, bytes: &Arc<[u8]>) {
        self.assembled.lock().insert(
            key,
            Assembled {
                generation,
                bytes: Arc::clone(bytes),
            },
        );
    }

    fn count_served(&self, len: usize) {
        if let Some(m) = self.metrics.read().as_ref() {
            m.bytes_total.add(len as u64);
        }
    }

    fn publish_footprint(&self) {
        let (entries, bytes) = {
            let cache = self.cache.lock();
            (cache.entries.len() as i64, cache.bytes as i64)
        };
        if let Some(m) = self.metrics.read().as_ref() {
            m.cache_entries.set(entries);
            m.cache_bytes.set(bytes);
        }
    }
}

/// The deterministic id of the combined bundle for a snapshot: derived
/// from the exact `(uuid, version)` set, so the same store content
/// always yields the same bundle id and any change yields a new one.
fn combined_bundle_id(snapshot: &StoreSnapshot) -> StixId {
    let mut name = String::from("misp-pull:");
    for versioned in snapshot.iter() {
        let _ = write!(name, "{}:{};", versioned.event.uuid, versioned.version);
    }
    StixId::derived("bundle", &name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeCategory, MispAttribute};
    use crate::event::MispEvent;

    fn seeded_store(n: u64) -> MispStore {
        let store = MispStore::new();
        for i in 0..n {
            let mut event = MispEvent::new(format!("event {i}"));
            event.add_attribute(MispAttribute::new(
                "domain",
                AttributeCategory::NetworkActivity,
                format!("host-{i}.example"),
            ));
            event.add_attribute(MispAttribute::new(
                "vulnerability",
                AttributeCategory::ExternalAnalysis,
                format!("CVE-2017-{:04}", 9000 + i),
            ));
            store.insert(event).unwrap();
        }
        store
    }

    #[allow(deprecated)]
    fn naive_pull(store: &MispStore, format: &str) -> String {
        let registry = ExportRegistry::with_builtins();
        store
            .all()
            .iter()
            .map(|event| registry.export(format, event).unwrap().unwrap())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn cached_bytes_match_naive_export() {
        let store = seeded_store(5);
        let share = ShareExporter::default();
        for format in ["misp-json", "stix2", "stix1", "misp-feed", "csv"] {
            for versioned in store.snapshot().iter() {
                let cached = share
                    .versioned_document(format, versioned)
                    .unwrap()
                    .unwrap();
                let naive = ShareExporter::default()
                    .registry()
                    .export(format, &versioned.event)
                    .unwrap()
                    .unwrap();
                assert_eq!(&cached[..], naive.as_bytes(), "format {format}");
                // Second read must come from cache with identical bytes.
                let again = share
                    .versioned_document(format, versioned)
                    .unwrap()
                    .unwrap();
                assert!(Arc::ptr_eq(&cached, &again), "format {format}");
            }
        }
    }

    #[test]
    fn pull_joins_documents_and_memoizes() {
        let store = seeded_store(4);
        let share = ShareExporter::default();
        let first = share.pull(&store, "misp-json", 1).unwrap().unwrap();
        assert_eq!(
            std::str::from_utf8(&first).unwrap(),
            naive_pull(&store, "misp-json")
        );
        let warm = share.pull(&store, "misp-json", 1).unwrap().unwrap();
        assert!(Arc::ptr_eq(&first, &warm));
        let stats = share.stats();
        assert_eq!(stats.assembled_hits, 1);
        assert_eq!(stats.assembled_misses, 1);
    }

    #[test]
    fn churn_reserializes_only_changed_events() {
        let store = seeded_store(10);
        let share = ShareExporter::default();
        share.pull(&store, "misp-json", 1).unwrap().unwrap();
        let cold = share.stats();
        assert_eq!(cold.misses, 10);

        store
            .update(3, |event| event.info = "changed".into())
            .unwrap();
        let second = share.pull(&store, "misp-json", 1).unwrap().unwrap();
        let warm = share.stats();
        // Exactly one event re-serialized; nine served from cache.
        assert_eq!(warm.misses - cold.misses, 1);
        assert_eq!(warm.hits - cold.hits, 9);
        assert_eq!(
            std::str::from_utf8(&second).unwrap(),
            naive_pull(&store, "misp-json")
        );
    }

    #[test]
    fn pull_published_prunes_and_invalidates_on_unpublish() {
        let store = seeded_store(4);
        for id in 1..=3 {
            store.publish(id).unwrap();
        }
        let share = ShareExporter::default();
        let first = share.pull_published(&store, "misp-json").unwrap().unwrap();
        let text = std::str::from_utf8(&first).unwrap();
        assert_eq!(text.matches("\"event ").count(), 3);
        assert!(!text.contains("event 3"), "unpublished event exported");
        // Unchanged store: served from the generation memo.
        let warm = share.pull_published(&store, "misp-json").unwrap().unwrap();
        assert!(Arc::ptr_eq(&first, &warm));

        // Unpublishing (what a decay sweep does) moves the generation;
        // the next pull drops the event instead of replaying stale
        // memoized bytes.
        store.update(2, |event| event.published = false).unwrap();
        let pruned = share.pull_published(&store, "misp-json").unwrap().unwrap();
        let text = std::str::from_utf8(&pruned).unwrap();
        assert_eq!(text.matches("\"event ").count(), 2);
        assert!(!text.contains("event 1"), "stale event still exported");
    }

    #[test]
    fn pull_is_parallel_deterministic() {
        let store = seeded_store(13);
        for format in ["misp-json", "csv", "stix2"] {
            let serial = ShareExporter::default()
                .pull(&store, format, 1)
                .unwrap()
                .unwrap();
            let parallel = ShareExporter::default()
                .pull(&store, format, 4)
                .unwrap()
                .unwrap();
            assert_eq!(&serial[..], &parallel[..], "format {format}");
        }
    }

    #[test]
    fn unknown_format_pulls_none() {
        let store = seeded_store(1);
        let share = ShareExporter::default();
        assert!(share.pull(&store, "openioc", 1).unwrap().is_none());
        assert!(share
            .export_event_bytes(&store, 1, "openioc")
            .unwrap()
            .is_none());
        assert!(matches!(
            share.export_event_bytes(&store, 99, "csv"),
            Err(MispError::EventNotFound { event_id: 99 })
        ));
    }

    #[test]
    fn stix_bundle_matches_whole_bundle_serialization() {
        use cais_stix::prelude::*;

        let store = seeded_store(6);
        let share = ShareExporter::default();
        let assembled = share.stix_bundle(&store, 1).unwrap();

        // Reference: one Bundle holding every event's objects in id
        // order, with the same derived id.
        let snapshot = store.snapshot();
        let mut objects = Vec::new();
        for versioned in snapshot.iter() {
            objects.extend(stix2::to_objects(&versioned.event));
        }
        let mut bundle = Bundle::new(objects);
        bundle.id = combined_bundle_id(&snapshot);
        let reference = bundle.to_json_pretty().unwrap();

        assert_eq!(std::str::from_utf8(&assembled).unwrap(), reference);
    }

    #[test]
    fn stix_bundle_serial_equals_parallel() {
        let store = seeded_store(9);
        let serial = ShareExporter::default().stix_bundle(&store, 1).unwrap();
        let parallel = ShareExporter::default().stix_bundle(&store, 4).unwrap();
        assert_eq!(&serial[..], &parallel[..]);

        // And the memo serves the identical Arc on a warm call.
        let share = ShareExporter::default();
        let first = share.stix_bundle(&store, 4).unwrap();
        let second = share.stix_bundle(&store, 4).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn empty_store_yields_empty_objects_array() {
        use cais_stix::prelude::*;

        let store = MispStore::new();
        let share = ShareExporter::default();
        let assembled = share.stix_bundle(&store, 1).unwrap();
        let snapshot = store.snapshot();
        let mut bundle = Bundle::empty();
        bundle.id = combined_bundle_id(&snapshot);
        assert_eq!(
            std::str::from_utf8(&assembled).unwrap(),
            bundle.to_json_pretty().unwrap()
        );
    }

    #[test]
    fn lru_bound_evicts_oldest() {
        let store = seeded_store(8);
        let share = ShareExporter::with_capacity(ExportRegistry::with_builtins(), 4);
        share.pull(&store, "csv", 1).unwrap().unwrap();
        let stats = share.stats();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.evictions, 4);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn telemetry_counters_surface() {
        let registry = Registry::new();
        let store = seeded_store(3);
        let share = ShareExporter::default();
        share.instrument(&registry);
        share.pull(&store, "misp-json", 1).unwrap().unwrap();
        share.pull(&store, "misp-json", 1).unwrap().unwrap();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["share_cache_misses_total"], 3);
        assert_eq!(snapshot.counters["share_assembled_hits_total"], 1);
        assert!(snapshot.counters["share_bytes_total"] > 0);
        assert_eq!(snapshot.gauges["share_cache_entries"], 3);
        assert!(snapshot.gauges["share_cache_bytes"] > 0);
    }

    #[test]
    fn cache_fill_chains_onto_the_event_trace() {
        let tracer = Tracer::new();
        let store = MispStore::new();
        store.set_tracer(&tracer);
        let share = ShareExporter::default();
        share.set_tracer(&tracer);

        let mut event = MispEvent::new("traced");
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            "traced.example",
        ));
        let id = store.insert(event).unwrap();

        // Cold read fills the cache (one span); warm read is silent.
        share.export_event_bytes(&store, id, "misp-json").unwrap();
        share.export_event_bytes(&store, id, "misp-json").unwrap();

        let insert = tracer
            .snapshot_subsystem("store")
            .into_iter()
            .find(|s| s.name == "store_insert")
            .unwrap();
        let share_spans = tracer.snapshot_subsystem("share");
        assert_eq!(share_spans.len(), 1, "cache hits record no span");
        assert_eq!(share_spans[0].name, "share_serialize");
        assert_eq!(share_spans[0].parent_id, insert.span_id);
        assert_eq!(share_spans[0].trace_id, insert.trace_id);
    }

    #[test]
    fn installing_a_module_clears_the_cache() {
        let store = seeded_store(2);
        let mut share = ShareExporter::default();
        share.pull(&store, "csv", 1).unwrap().unwrap();
        assert!(share.stats().entries > 0);
        struct Null;
        impl crate::export::ExportModule for Null {
            fn format_name(&self) -> &str {
                "null"
            }
            fn write_into(
                &self,
                _event: &MispEvent,
                out: &mut dyn std::io::Write,
            ) -> Result<(), MispError> {
                out.write_all(b"-").map_err(MispError::from)
            }
        }
        share.exports_mut().install(Box::new(Null));
        assert_eq!(share.stats().entries, 0);
        let out = share.pull(&store, "null", 1).unwrap().unwrap();
        assert_eq!(&out[..], b"-\n-");
    }
}
