//! Property test: the zero-clone share path is observationally
//! equivalent to naive per-event export. For arbitrary stores and
//! interleaved insert/update mutations, across every registered
//! format:
//!
//! * cached pulls byte-match the join of fresh `export()` strings,
//! * per-event cached bytes byte-match fresh `export()` output,
//! * serial and parallel STIX bundle assembly agree,
//!
//! after every mutation round — so stale cache entries, version
//! keying and generation invalidation are all exercised.

use cais_misp::export::ExportRegistry;
use cais_misp::{AttributeCategory, MispAttribute, MispEvent, MispStore, ShareExporter};
use proptest::prelude::*;

/// Typed attribute seeds that pass store validation, including the
/// values CSV quoting and JSON escaping must round-trip.
const VALUES: &[(&str, &str)] = &[
    ("domain", "c2.evil.example"),
    ("ip-dst", "203.0.113.9"),
    ("vulnerability", "CVE-2017-9805"),
    ("text", "needs,csv \"quoting\""),
    ("text", "multi\nline value"),
    ("text", "plain"),
];

fn event(info: String, values: Vec<(&'static str, &'static str)>) -> MispEvent {
    let mut e = MispEvent::new(info);
    for (attr_type, value) in values {
        e.add_attribute(MispAttribute::new(
            attr_type,
            AttributeCategory::NetworkActivity,
            value,
        ));
    }
    e
}

/// What the share cache must reproduce: every event freshly exported
/// through the registry's owned-string path, joined by `\n`.
fn naive_pull(store: &MispStore, registry: &ExportRegistry, format: &str) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, versioned) in store.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(b'\n');
        }
        let document = registry
            .export(format, &versioned.event)
            .expect("builtin format")
            .expect("export succeeds");
        out.extend_from_slice(document.as_bytes());
    }
    out
}

fn check(share: &ShareExporter, store: &MispStore, round: usize) {
    let reference = ExportRegistry::with_builtins();
    for format in reference.formats() {
        let cached = share
            .pull(store, format, 3)
            .expect("pull succeeds")
            .expect("builtin format");
        let naive = naive_pull(store, &reference, format);
        assert_eq!(
            &*cached,
            &naive[..],
            "pull diverged for format {format} in round {round}"
        );
        for versioned in store.snapshot().iter() {
            let bytes = share
                .export_event_bytes(store, versioned.event.id, format)
                .expect("export succeeds")
                .expect("builtin format");
            let fresh = reference
                .export(format, &versioned.event)
                .expect("builtin format")
                .expect("export succeeds");
            assert_eq!(
                &*bytes,
                fresh.as_bytes(),
                "event {} diverged for format {format} in round {round}",
                versioned.event.id
            );
        }
    }
    let serial = ShareExporter::default()
        .stix_bundle(store, 1)
        .expect("serial bundle");
    let parallel = share.stix_bundle(store, 4).expect("parallel bundle");
    assert_eq!(serial, parallel, "stix assembly diverged in round {round}");
}

proptest! {
    #[test]
    fn cached_share_path_matches_naive_export(
        seeds in prop::collection::vec(
            prop::collection::vec(prop::sample::select(VALUES.to_vec()), 0..4),
            1..4,
        ),
        rounds in prop::collection::vec(
            (0usize..4, prop::sample::select(VALUES.to_vec()), "[a-z]{3,10}"),
            0..4,
        ),
    ) {
        let store = MispStore::new();
        let share = ShareExporter::default();
        let mut ids = Vec::new();
        for (i, values) in seeds.into_iter().enumerate() {
            let id = store
                .insert(event(format!("event {i}"), values))
                .expect("insert");
            ids.push(id);
        }
        check(&share, &store, 0);

        for (round, (pick, (attr_type, value), info)) in rounds.into_iter().enumerate() {
            let id = ids[pick % ids.len()];
            store
                .update(id, |e| {
                    e.info = info.clone();
                    e.add_attribute(MispAttribute::new(
                        attr_type,
                        AttributeCategory::NetworkActivity,
                        value,
                    ));
                })
                .expect("update");
            // Inserts between pulls, too: the store generation moves.
            if round % 2 == 1 {
                let id = store
                    .insert(event(format!("late {round}"), vec![("text", "plain")]))
                    .expect("insert");
                ids.push(id);
            }
            check(&share, &store, round + 1);
        }
    }
}
