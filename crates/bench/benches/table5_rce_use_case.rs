//! Table V: the full vulnerability-heuristic evaluation of the
//! CVE-2017-9805 use case — feature extraction against the context plus
//! Eq. 1 — and its sensitivity to dynamic-context size.

use cais_common::{Observable, ObservableKind};
use cais_core::heuristics::vulnerability;
use cais_core::EvaluationContext;
use cais_infra::{Alarm, AlarmSeverity, NodeId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_use_case(c: &mut Criterion) {
    let ctx = EvaluationContext::paper_use_case();
    let ioc = vulnerability::paper_rce_ioc();
    c.bench_function("table5_rce_evaluation", |b| {
        b.iter(|| vulnerability::evaluate(black_box(&ioc), black_box(&ctx)))
    });
}

fn bench_context_size(c: &mut Criterion) {
    let ioc = vulnerability::paper_rce_ioc();
    let mut group = c.benchmark_group("table5_context_scaling");
    for alarms in [0usize, 100, 1_000, 10_000] {
        let ctx = EvaluationContext::paper_use_case();
        for i in 0..alarms {
            ctx.push_alarm(Alarm::new(
                i as u64,
                NodeId((i % 4 + 1) as u32),
                AlarmSeverity::Medium,
                "203.0.113.9",
                "192.168.1.14",
                format!("alarm {i}"),
                "suricata",
                ctx.now,
            ));
            ctx.sightings.record(
                &Observable::new(
                    ObservableKind::Ipv4,
                    format!("10.0.{}.{}", i / 250, i % 250),
                ),
                ctx.now,
                None,
                "suricata",
            );
        }
        group.bench_with_input(BenchmarkId::from_parameter(alarms), &alarms, |b, _| {
            b.iter(|| vulnerability::evaluate(black_box(&ioc), black_box(&ctx)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_use_case, bench_context_size);
criterion_main!(benches);
