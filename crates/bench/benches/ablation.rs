//! Ablation benches for the design choices DESIGN.md calls out:
//! deduplication on/off (what MISP storage traffic looks like without
//! the paper's dedup stage), correlation-handle ablations (which
//! interconnection rules actually cluster events), and the two weight
//! normalization policies.

use cais_bench::workloads;
use cais_common::Timestamp;
use cais_core::collector::aggregate_into_ciocs;
use cais_core::heuristics::{score, FeatureValue, NormalizationPolicy, WeightScheme};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Dedup ablation: the full collector vs pushing every record straight
/// to aggregation (what a platform without Section III-A1's
/// deduplicator would do).
fn bench_dedup_ablation(c: &mut Criterion) {
    let records = workloads::record_stream(13, 4, 300, 0.5, 0.3, Timestamp::EPOCH);
    let mut group = c.benchmark_group("ablation_dedup");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("with_dedup", |b| {
        b.iter_batched(
            || records.clone(),
            |records| {
                let mut collector = cais_core::collector::OsintCollector::new();
                black_box(collector.ingest(records, Timestamp::EPOCH).len())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("without_dedup", |b| {
        b.iter_batched(
            || records.clone(),
            |records| black_box(aggregate_into_ciocs(records, Timestamp::EPOCH).len()),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();

    // Print the structural outcome once: cluster counts with and
    // without dedup (the quality argument, not just the time).
    let mut collector = cais_core::collector::OsintCollector::new();
    let with_dedup = collector.ingest(records.clone(), Timestamp::EPOCH).len();
    let without = aggregate_into_ciocs(records.clone(), Timestamp::EPOCH).len();
    println!(
        "ablation_dedup: {} records -> {} cIoCs with dedup, {} without",
        records.len(),
        with_dedup,
        without
    );
}

/// Correlation-handle ablation: strip the inputs each handle keys on
/// and measure how clustering degrades.
fn bench_correlation_handles(c: &mut Criterion) {
    let full = workloads::record_stream(17, 4, 250, 0.0, 0.3, Timestamp::EPOCH);
    let mut no_descriptions = full.clone();
    for r in &mut no_descriptions {
        r.description = None; // disables the malware-family handle
    }
    let mut no_cves = full.clone();
    for r in &mut no_cves {
        r.cve = None; // disables the CVE handle
    }
    let mut group = c.benchmark_group("ablation_correlation_handles");
    for (name, records) in [
        ("all_handles", &full),
        ("no_family_handle", &no_descriptions),
        ("no_cve_handle", &no_cves),
    ] {
        let clusters = aggregate_into_ciocs(records.clone(), Timestamp::EPOCH).len();
        println!("ablation_correlation {name}: {clusters} clusters");
        group.bench_with_input(BenchmarkId::from_parameter(name), records, |b, records| {
            b.iter_batched(
                || records.clone(),
                |records| black_box(aggregate_into_ciocs(records, Timestamp::EPOCH).len()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Normalization-policy ablation: Table I's fixed weights vs Table V's
/// renormalization, over vectors with missing features.
fn bench_normalization_policy(c: &mut Criterion) {
    let values: Vec<FeatureValue> = (0..9)
        .map(|i| {
            if i == 6 {
                FeatureValue::Empty
            } else {
                FeatureValue::scored((i % 5 + 1) as u8)
            }
        })
        .collect();
    let fixed = WeightScheme::Static {
        weights: vec![1.0 / 9.0; 9],
        policy: NormalizationPolicy::Fixed,
    };
    let renorm = WeightScheme::Static {
        weights: vec![1.0 / 9.0; 9],
        policy: NormalizationPolicy::OverEvaluated,
    };
    println!(
        "ablation_normalization: fixed TS={:.4}, renormalized TS={:.4}",
        score::threat_score(&values, &fixed).total(),
        score::threat_score(&values, &renorm).total(),
    );
    let mut group = c.benchmark_group("ablation_normalization");
    group.bench_function("fixed", |b| {
        b.iter(|| score::threat_score(black_box(&values), black_box(&fixed)))
    });
    group.bench_function("renormalized", |b| {
        b.iter(|| score::threat_score(black_box(&values), black_box(&renorm)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dedup_ablation,
    bench_correlation_handles,
    bench_normalization_policy
);
criterion_main!(benches);
