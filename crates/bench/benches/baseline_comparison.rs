//! The context-aware pipeline vs the static baseline: per-IoC decision
//! cost and the detection-quality evaluation the paper's future work
//! promises.

use cais_core::baseline::{evaluate_detection, labeled_population, Approach, StaticScorer};
use cais_core::{Enricher, EvaluationContext, Reducer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn bench_per_ioc_cost(c: &mut Criterion) {
    let ctx = EvaluationContext::paper_use_case();
    let population = labeled_population(3, 64, 0.3, &ctx);
    let enricher = Enricher::new(ctx.clone());
    let reducer = Reducer::new(Arc::clone(&ctx.inventory));
    let scorer = StaticScorer;

    let mut group = c.benchmark_group("per_ioc_decision");
    group.throughput(Throughput::Elements(population.len() as u64));
    group.bench_function("context_aware", |b| {
        b.iter(|| {
            let mut flagged = 0usize;
            for sample in &population {
                let eioc = enricher.enrich(sample.cioc.clone());
                if reducer.reduce(&eioc).is_some() {
                    flagged += 1;
                }
            }
            black_box(flagged)
        })
    });
    group.bench_function("static", |b| {
        b.iter(|| {
            let mut flagged = 0usize;
            for sample in &population {
                if scorer.score(&sample.cioc, &ctx) >= 3.5 {
                    flagged += 1;
                }
            }
            black_box(flagged)
        })
    });
    group.finish();
}

fn bench_detection_evaluation(c: &mut Criterion) {
    let ctx = EvaluationContext::paper_use_case();
    let mut group = c.benchmark_group("detection_evaluation");
    group.sample_size(10);
    for size in [100usize, 400] {
        let population = labeled_population(7, size, 0.3, &ctx);
        group.bench_with_input(
            BenchmarkId::new("context_aware", size),
            &population,
            |b, population| {
                b.iter(|| black_box(evaluate_detection(Approach::ContextAware, population, &ctx)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("static", size),
            &population,
            |b, population| {
                b.iter(|| {
                    black_box(evaluate_detection(
                        Approach::Static { threshold: 3.5 },
                        population,
                        &ctx,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_per_ioc_cost, bench_detection_evaluation);
criterion_main!(benches);
