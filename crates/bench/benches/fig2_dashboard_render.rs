//! Figs. 2–4: dashboard state aggregation and rendering (ASCII, HTML,
//! JSON) under growing alarm/rIoC volumes — the paper's future-work
//! concern about "representation of a huge amount of alarms and rIoCs".

use cais_common::{Timestamp, Uuid};
use cais_core::ReducedIoc;
use cais_dashboard::{render, DashboardState, IssueBoard, NodeView, SecurityIssue};
use cais_infra::inventory::Inventory;
use cais_infra::{Alarm, AlarmSeverity, NodeId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn populated(alarms: usize, riocs: usize) -> DashboardState {
    let mut state = DashboardState::new(Inventory::paper_table3());
    for i in 0..alarms {
        state.apply_alarm(Alarm::new(
            i as u64,
            NodeId((i % 4 + 1) as u32),
            match i % 3 {
                0 => AlarmSeverity::Low,
                1 => AlarmSeverity::Medium,
                _ => AlarmSeverity::High,
            },
            format!("203.0.113.{}", i % 250 + 1),
            "192.168.1.14",
            format!("alarm {i}"),
            "suricata",
            Timestamp::EPOCH,
        ));
    }
    for i in 0..riocs {
        state.apply_rioc(ReducedIoc {
            id: Uuid::new_v5(&format!("rioc-{i}")),
            cve: Some(format!("CVE-2019-{:04}", i % 9999 + 1)),
            description: format!("issue {i}"),
            affected_application: Some("apache".into()),
            threat_score: (i % 50) as f64 / 10.0,
            criteria: None,
            nodes: vec![NodeId((i % 4 + 1) as u32)],
            via_common_keyword: false,
            misp_event_id: None,
        });
    }
    state
}

fn bench_renderers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_render");
    for scale in [10usize, 100, 1_000] {
        let state = populated(scale, scale);
        group.bench_with_input(BenchmarkId::new("ascii", scale), &scale, |b, _| {
            b.iter(|| black_box(render::ascii(&state)))
        });
        group.bench_with_input(BenchmarkId::new("html", scale), &scale, |b, _| {
            b.iter(|| black_box(render::html(&state)))
        });
        group.bench_with_input(BenchmarkId::new("json", scale), &scale, |b, _| {
            b.iter(|| black_box(render::json(&state)))
        });
        group.bench_with_input(BenchmarkId::new("badges", scale), &scale, |b, _| {
            b.iter(|| black_box(state.badges()))
        });
    }
    group.finish();
}

fn bench_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fig4_views");
    let state = populated(500, 500);
    group.bench_function("fig3_node_view", |b| {
        b.iter(|| black_box(NodeView::build(&state, NodeId(4))))
    });
    group.bench_function("fig4_issue_board_cap20", |b| {
        b.iter(|| {
            let mut board = IssueBoard::with_cap(20);
            for rioc in state.riocs() {
                board.push(SecurityIssue::from_rioc(rioc, state.inventory()));
            }
            black_box(board.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_renderers, bench_views);
criterion_main!(benches);
