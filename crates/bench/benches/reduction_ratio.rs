//! Section III's rationale for rIoCs: the reduced form is what makes
//! visualization tractable. Measures the reducer's matching cost and
//! the eIoC→rIoC size ratio across cluster sizes.

use cais_bench::workloads;
use cais_common::{Observable, ObservableKind};
use cais_core::{ComposedIoc, Enricher, EvaluationContext, Reducer};
use cais_feeds::{FeedRecord, ThreatCategory};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn enriched_cluster(ctx: &EvaluationContext, members: usize) -> cais_core::EnrichedIoc {
    let mut records = vec![workloads::struts_advisory(ctx)];
    for i in 1..members {
        records.push(
            FeedRecord::new(
                Observable::new(ObservableKind::Ipv4, format!("203.0.113.{}", i % 250 + 1)),
                ThreatCategory::VulnerabilityExploitation,
                format!("feed-{i}"),
                ctx.now.add_days(-(i as i64 % 90) - 1),
            )
            .with_cve("CVE-2017-9805")
            .with_description("remote code execution in apache struts"),
        );
    }
    let cioc = ComposedIoc::new(ThreatCategory::VulnerabilityExploitation, records, ctx.now);
    Enricher::new(ctx.clone()).enrich(cioc)
}

fn bench_reduce(c: &mut Criterion) {
    let ctx = EvaluationContext::paper_use_case();
    let reducer = Reducer::new(Arc::clone(&ctx.inventory));
    let mut group = c.benchmark_group("reduce_matching");
    for members in [1usize, 10, 100] {
        let eioc = enriched_cluster(&ctx, members);
        group.bench_with_input(BenchmarkId::from_parameter(members), &eioc, |b, eioc| {
            b.iter(|| black_box(reducer.reduce(eioc)))
        });
    }
    group.finish();
}

fn bench_size_ratio(c: &mut Criterion) {
    // Not a timing benchmark so much as a measured artifact: serialize
    // both forms and report the ratio through Criterion's output.
    let ctx = EvaluationContext::paper_use_case();
    let reducer = Reducer::new(Arc::clone(&ctx.inventory));
    let mut group = c.benchmark_group("rioc_serialized_size");
    for members in [1usize, 10, 100] {
        let eioc = enriched_cluster(&ctx, members);
        let rioc = reducer.reduce(&eioc).expect("matches node 4");
        let eioc_bytes = serde_json::to_string(&eioc).expect("eioc json").len();
        let rioc_bytes = serde_json::to_string(&rioc).expect("rioc json").len();
        println!(
            "members={members}: eIoC {eioc_bytes} B, rIoC {rioc_bytes} B, ratio {:.1}x",
            eioc_bytes as f64 / rioc_bytes as f64
        );
        group.bench_with_input(
            BenchmarkId::new("serialize_both", members),
            &(eioc, rioc),
            |b, (eioc, rioc)| {
                b.iter(|| {
                    let e = serde_json::to_string(eioc).expect("eioc json").len();
                    let r = serde_json::to_string(rioc).expect("rioc json").len();
                    black_box((e, r))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reduce, bench_size_ratio);
criterion_main!(benches);
