//! Section II-A's claim: deduplication and aggregation shrink the data
//! an analyst faces. Sweeps the duplication rate and feed count,
//! measuring the collector in isolation.

use cais_bench::workloads;
use cais_common::Timestamp;
use cais_core::collector::{aggregate_into_ciocs, Deduplicator, OsintCollector};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_dedup_rate_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("dedup_rate_sweep");
    for dup in [0.0f64, 0.3, 0.6, 0.9] {
        let records = workloads::record_stream(5, 4, 300, dup, 0.2, Timestamp::EPOCH);
        group.throughput(Throughput::Elements(records.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}pct", dup * 100.0)),
            &records,
            |b, records| {
                b.iter_batched(
                    || records.clone(),
                    |records| {
                        let mut dedup = Deduplicator::new();
                        black_box(dedup.filter_batch(records).len())
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_correlation");
    for size in [200usize, 800, 3_200] {
        let records = workloads::record_stream(6, 4, size / 4, 0.0, 0.3, Timestamp::EPOCH);
        group.throughput(Throughput::Elements(records.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &records, |b, records| {
            b.iter_batched(
                || records.clone(),
                |records| black_box(aggregate_into_ciocs(records, Timestamp::EPOCH).len()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_collector_feed_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("collector_feed_count");
    group.sample_size(20);
    for feeds in [1usize, 4, 16] {
        let records = workloads::record_stream(8, feeds, 200, 0.3, 0.3, Timestamp::EPOCH);
        group.throughput(Throughput::Elements(records.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(feeds),
            &records,
            |b, records| {
                b.iter_batched(
                    || records.clone(),
                    |records| {
                        let mut collector = OsintCollector::new();
                        black_box(collector.ingest(records, Timestamp::EPOCH).len())
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dedup_rate_sweep,
    bench_aggregation,
    bench_collector_feed_count
);
criterion_main!(benches);
