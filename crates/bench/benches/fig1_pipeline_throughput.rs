//! Fig. 1: the whole architecture end to end — feed records through
//! dedup, aggregation, MISP storage, heuristic scoring and reduction —
//! swept over stream size.

use cais_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_pipeline");
    group.sample_size(10);
    for records in [200usize, 800, 3_200] {
        let per_feed = records / 4;
        group.throughput(Throughput::Elements(records as u64));
        group.bench_with_input(BenchmarkId::new("ingest", records), &records, |b, _| {
            b.iter_batched(
                || {
                    let platform = workloads::platform();
                    let stream =
                        workloads::record_stream(9, 4, per_feed, 0.3, 0.2, platform.context().now);
                    (platform, stream)
                },
                |(mut platform, stream)| {
                    black_box(platform.ingest_feed_records(stream).expect("ingestion"))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_sensor_path(c: &mut Criterion) {
    use cais_infra::inventory::Inventory;
    use cais_infra::sensors::nids;

    let mut group = c.benchmark_group("fig1_sensor_path");
    group.sample_size(10);
    let inventory = Inventory::paper_table3();
    for packets in [1_000usize, 5_000] {
        let traffic =
            nids::generate_traffic(4, packets, 0.1, &inventory, cais_common::Timestamp::EPOCH);
        group.throughput(Throughput::Elements(packets as u64));
        group.bench_with_input(BenchmarkId::new("packets", packets), &packets, |b, _| {
            b.iter_batched(
                workloads::platform,
                |mut platform| {
                    platform.ingest_packets(black_box(&traffic));
                    black_box(platform.context().alarms.read().len())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_sensor_path);
criterion_main!(benches);
