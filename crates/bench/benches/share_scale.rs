//! The cached share path vs naive re-serialization on a 10k-event
//! store.
//!
//! Three shapes: `naive` re-serializes every event per pull, `warm`
//! replays the generation memo of an unchanged store, and `churn`
//! mutates 1% of the events before each pull so only those
//! re-serialize. The ≥5× warm-pull acceptance criterion reads directly
//! off the `naive` vs `warm` lines; byte equivalence is asserted once
//! up front (and exhaustively by the `share_equivalence` proptest in
//! `cais-misp`).

use cais_bench::workloads;
use cais_misp::export::ExportRegistry;
use cais_misp::{MispStore, ShareExporter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const EVENTS: usize = 10_000;
const FORMAT: &str = "misp-json";

fn naive_pull(store: &MispStore, registry: &ExportRegistry) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, versioned) in store.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(b'\n');
        }
        let document = registry
            .export(FORMAT, &versioned.event)
            .expect("export succeeds")
            .expect("format exists");
        out.extend_from_slice(document.as_bytes());
    }
    out
}

fn bench_share_scale(c: &mut Criterion) {
    let store = MispStore::new();
    for event in workloads::synthetic_events(42, EVENTS) {
        store.insert(event).expect("insert");
    }
    let share = ShareExporter::default();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let cached = share
        .pull(&store, FORMAT, workers)
        .expect("pull succeeds")
        .expect("format exists");
    assert_eq!(
        *cached,
        naive_pull(&store, share.registry())[..],
        "cached pull bytes diverge from the naive export"
    );

    let mut group = c.benchmark_group("share_scale");
    group.sample_size(10);
    group.throughput(Throughput::Elements(EVENTS as u64));

    group.bench_function(BenchmarkId::new("naive", EVENTS), |b| {
        b.iter(|| black_box(naive_pull(&store, share.registry())))
    });

    group.bench_function(BenchmarkId::new("warm", EVENTS), |b| {
        b.iter(|| black_box(share.pull(&store, FORMAT, workers).unwrap().unwrap()))
    });

    group.bench_function(BenchmarkId::new("churn", EVENTS), |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            workloads::churn_events(&store, 0.01, round);
            black_box(share.pull(&store, FORMAT, workers).unwrap().unwrap())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_share_scale);
criterion_main!(benches);
