//! Sharded parallel ingestion vs the sequential path, on a 100k-record
//! synthetic OSINT workload.
//!
//! The parallel path partitions dedup across shards, fans filter /
//! enrich / payload-serialization work over scoped worker threads, and
//! flushes bus announcements as per-topic batches; both paths produce
//! identical reports and eIoC/rIoC sets (asserted once up front here,
//! and continuously by `tests/scale.rs` and the pipeline test suite).
//! The throughput gap therefore measures the sharding alone. Speedup
//! scales with available cores: on a single-CPU host the two paths are
//! expected to tie (the parallel path pays thread management for no
//! extra compute), while ≥4 cores put the parallel path at a multiple
//! of the sequential one, because everything but store insertion and
//! batch flushing runs in the workers.

use cais_bench::workloads;
use cais_core::Platform;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const FEEDS: usize = 10;
const RECORDS_PER_FEED: usize = 10_000;
const RECORDS: usize = FEEDS * RECORDS_PER_FEED;
const WORKERS: usize = 4;

fn workload(platform: &Platform) -> Vec<cais_feeds::FeedRecord> {
    workloads::record_stream(
        41,
        FEEDS,
        RECORDS_PER_FEED,
        0.5,
        0.3,
        platform.context().now,
    )
}

fn assert_paths_agree() {
    let mut sequential = workloads::platform();
    let mut parallel = workloads::platform();
    let records = workload(&sequential);
    let seq = sequential
        .ingest_feed_records(records.clone())
        .expect("sequential ingestion");
    let par = parallel
        .ingest_feed_records_parallel(records, WORKERS)
        .expect("parallel ingestion");
    assert!(
        seq.same_counters(&par),
        "parallel ingestion diverged from sequential:\n{seq:?}\nvs\n{par:?}"
    );
    assert_eq!(sequential.eiocs(), parallel.eiocs());
    assert_eq!(sequential.riocs(), parallel.riocs());
}

fn bench_parallel_ingest(c: &mut Criterion) {
    assert_paths_agree();

    let mut group = c.benchmark_group("parallel_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(RECORDS as u64));

    group.bench_function(BenchmarkId::new("sequential", RECORDS), |b| {
        b.iter_batched(
            || {
                let platform = workloads::platform();
                let records = workload(&platform);
                (platform, records)
            },
            |(mut platform, records)| {
                black_box(platform.ingest_feed_records(records).expect("ingestion"))
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function(
        BenchmarkId::new(format!("parallel{WORKERS}"), RECORDS),
        |b| {
            b.iter_batched(
                || {
                    let platform = workloads::platform();
                    let records = workload(&platform);
                    (platform, records)
                },
                |(mut platform, records)| {
                    black_box(
                        platform
                            .ingest_feed_records_parallel(records, WORKERS)
                            .expect("ingestion"),
                    )
                },
                criterion::BatchSize::LargeInput,
            )
        },
    );

    group.finish();
}

criterion_group!(benches, bench_parallel_ingest);
criterion_main!(benches);
