//! Indexed reduction vs the retained linear-scan baseline on a
//! synthetic 1k-node fleet.
//!
//! The indexed reducer runs the full 50k-eIoC population; the linear
//! baseline runs a 5k prefix slice with its own element count, because
//! at baseline speed the full population takes minutes per iteration
//! under the harness. Both report `elem/s`, so the ≥5× acceptance
//! criterion reads directly off the two throughput lines. Equivalence
//! of the outputs is asserted once up front (and exhaustively by the
//! `index_equivalence` proptest in `cais-infra`).

use std::sync::Arc;

use cais_bench::workloads;
use cais_core::{EvaluationContext, Reducer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const NODES: usize = 1_000;
const EIOCS: usize = 50_000;
const LINEAR_SAMPLE: usize = 5_000;

fn bench_reduce_scale(c: &mut Criterion) {
    let ctx = EvaluationContext::paper_use_case();
    let inventory = Arc::new(workloads::synthetic_inventory(42, NODES));
    let population = workloads::reduce_eiocs(42, EIOCS, &ctx);

    let indexed = Reducer::new(inventory.clone());
    let linear = Reducer::linear_baseline(inventory);
    for eioc in &population[..LINEAR_SAMPLE] {
        assert_eq!(
            indexed.reduce(eioc),
            linear.reduce(eioc),
            "indexed and linear reducers disagree"
        );
    }

    let mut group = c.benchmark_group("reduce_scale");
    group.sample_size(10);

    group.throughput(Throughput::Elements(LINEAR_SAMPLE as u64));
    group.bench_function(BenchmarkId::new("linear", LINEAR_SAMPLE), |b| {
        b.iter(|| {
            let mut riocs = 0usize;
            for eioc in &population[..LINEAR_SAMPLE] {
                riocs += usize::from(linear.reduce(black_box(eioc)).is_some());
            }
            black_box(riocs)
        })
    });

    group.throughput(Throughput::Elements(EIOCS as u64));
    group.bench_function(BenchmarkId::new("indexed", EIOCS), |b| {
        b.iter(|| {
            let mut riocs = 0usize;
            for eioc in &population {
                riocs += usize::from(indexed.reduce(black_box(eioc)).is_some());
            }
            black_box(riocs)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_reduce_scale);
criterion_main!(benches);
