//! Table I: the Threat Score computation itself — the paper's Eq. 1
//! over the three worked heuristics, plus scaling in feature count.

use cais_core::heuristics::{score, CriteriaPoints, FeatureValue, WeightScheme};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let weights = WeightScheme::fixed(vec![0.10, 0.25, 0.40, 0.15, 0.10]);
    let rows = [
        ("H1", [3u8, 4, 3, 1, 5]),
        ("H2", [5, 2, 2, 4, 0]),
        ("H3", [1, 1, 2, 3, 3]),
    ];
    let mut group = c.benchmark_group("table1_threat_score");
    for (name, raw) in rows {
        let values = raw.map(FeatureValue::scored);
        group.bench_function(name, |b| {
            b.iter(|| score::threat_score(black_box(&values), black_box(&weights)))
        });
    }
    group.finish();
}

fn bench_feature_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("threat_score_scaling");
    for n in [5usize, 20, 80, 320] {
        let values: Vec<FeatureValue> = (0..n)
            .map(|i| FeatureValue::scored((i % 6) as u8))
            .collect();
        let static_scheme = WeightScheme::fixed(vec![1.0 / n as f64; n]);
        let criteria_scheme = WeightScheme::from_criteria(
            (0..n)
                .map(|i| CriteriaPoints::new(1 + (i % 10) as u32, 1, 1, 1))
                .collect(),
        );
        group.bench_with_input(BenchmarkId::new("static", n), &n, |b, _| {
            b.iter(|| score::threat_score(black_box(&values), black_box(&static_scheme)))
        });
        group.bench_with_input(BenchmarkId::new("criteria", n), &n, |b, _| {
            b.iter(|| score::threat_score(black_box(&values), black_box(&criteria_scheme)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1, bench_feature_scaling);
criterion_main!(benches);
