//! Regeneration of every table and figure of the paper, as printable
//! report sections. The `report` binary prints these; `EXPERIMENTS.md`
//! records one run.

use std::fmt::Write as _;
use std::time::Instant;

use cais_core::baseline::{evaluate_detection, labeled_population, Approach};
use cais_core::heuristics::{
    feature_names, score, vulnerability, FeatureValue, HeuristicKind, WeightScheme,
};
use cais_core::EvaluationContext;
use cais_dashboard::{render, DashboardState, NodeView, SecurityIssue};
use cais_infra::inventory::Inventory;
use cais_infra::NodeId;

use crate::workloads;

/// Table I: the worked threat-score example.
pub fn table1() -> String {
    let mut out = String::from("## Table I — Threat Score computation example\n\n");
    let weights = WeightScheme::fixed(vec![0.10, 0.25, 0.40, 0.15, 0.10]);
    let cases = [
        ("H1", [3, 4, 3, 1, 5], 3.15),
        ("H2", [5, 2, 2, 4, 0], 1.92),
        ("H3", [1, 1, 2, 3, 3], 1.90),
    ];
    let _ = writeln!(out, "| heuristic | X | paper TS | measured TS | match |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for (name, values, paper) in cases {
        let ts = score::threat_score(&values.map(FeatureValue::scored), &weights);
        let _ = writeln!(
            out,
            "| {name} | {values:?} | {paper:.2} | {:.2} | {} |",
            ts.total(),
            if (ts.total() - paper).abs() < 1e-9 {
                "✓"
            } else {
                "✗"
            },
        );
    }
    out
}

/// Table II: the heuristic feature sets.
pub fn table2() -> String {
    let mut out = String::from("## Table II — Heuristic feature sets\n\n");
    for kind in HeuristicKind::ALL {
        let _ = writeln!(out, "* **{kind}**: {}", feature_names(kind).join(", "));
    }
    out
}

/// Table III: the infrastructure inventory fixture.
pub fn table3() -> String {
    let mut out = String::from("## Table III — Infrastructure inventory\n\n");
    let inventory = Inventory::paper_table3();
    let _ = writeln!(out, "| node | name | applications |");
    let _ = writeln!(out, "|---|---|---|");
    for node in inventory.nodes() {
        let _ = writeln!(
            out,
            "| {} | {} | {} |",
            node.id,
            node.name,
            node.applications.join(", ")
        );
    }
    let _ = writeln!(
        out,
        "| all | — | {} (common keyword) |",
        inventory.common_keywords().join(", ")
    );
    out
}

/// Table IV: the vulnerability attribute/score bands, probed through
/// the live scoring functions.
pub fn table4() -> String {
    let ctx = EvaluationContext::paper_use_case();
    let mut out = String::from("## Table IV — Vulnerability feature scoring bands (probed)\n\n");
    let probe = |build: &dyn Fn(&mut cais_stix::sdo::VulnerabilityBuilder)| {
        let mut builder = cais_stix::sdo::Vulnerability::builder("probe");
        builder
            .created(ctx.now.add_days(-400))
            .modified(ctx.now.add_days(-400));
        build(&mut builder);
        vulnerability::evaluate_features(&builder.build(), &ctx)
    };
    let fmt = |v: FeatureValue| match v {
        FeatureValue::Empty => "empty".to_owned(),
        FeatureValue::Scored(x) => x.to_string(),
    };
    let _ = writeln!(out, "| feature | attribute | score |");
    let _ = writeln!(out, "|---|---|---|");
    for (os, label) in [
        ("windows", "windows"),
        ("debian", "linux family"),
        ("solaris", "other"),
    ] {
        let values = probe(&|b| {
            b.operating_system(os);
        });
        let _ = writeln!(out, "| operating_system | {label} | {} |", fmt(values[0]));
    }
    let fresh = probe(&|b| {
        b.created(ctx.now.add_millis(-3_600_000))
            .modified(ctx.now.add_millis(-3_600_000));
    });
    let _ = writeln!(out, "| modified_created | last_24h | {} |", fmt(fresh[4]));
    let year_old = probe(&|b| {
        b.created(ctx.now.add_days(-200))
            .modified(ctx.now.add_days(-200));
    });
    let _ = writeln!(
        out,
        "| modified_created | last_year | {} |",
        fmt(year_old[4])
    );
    let refs = probe(&|b| {
        b.external_reference(cais_stix::common::ExternalReference::cve("CVE-2017-9805"))
            .external_reference(cais_stix::common::ExternalReference::capec("CAPEC-586"));
    });
    let _ = writeln!(
        out,
        "| external_references | multi_known_ref | {} |",
        fmt(refs[7])
    );
    for (cvss, label) in [
        (9.8, "critical"),
        (8.1, "high"),
        (5.0, "medium"),
        (2.0, "low"),
    ] {
        let values = probe(&|b| {
            b.external_reference(cais_stix::common::ExternalReference::cve("CVE-2099-9999"))
                .cvss_score(cvss);
        });
        let _ = writeln!(out, "| cve | CVE with {label} CVSS | {} |", fmt(values[8]));
    }
    out
}

/// Table V: the full RCE use-case scoring run.
pub fn table5() -> String {
    let ctx = EvaluationContext::paper_use_case();
    let ts = vulnerability::evaluate(&vulnerability::paper_rce_ioc(), &ctx);
    let mut out = String::from("## Table V — RCE use-case threat score\n\n");
    let paper_xi = ["3", "1", "2", "1", "2", "1", "—", "5", "4"];
    let paper_pi = [
        0.0952, 0.0952, 0.1429, 0.0952, 0.0476, 0.0476, 0.0, 0.2738, 0.2024,
    ];
    let _ = writeln!(out, "| feature | paper Xi | Xi | paper Pi | Pi |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for (i, line) in ts.breakdown().lines.iter().enumerate() {
        let xi = match line.value {
            FeatureValue::Empty => "—".to_owned(),
            FeatureValue::Scored(v) => v.to_string(),
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.4} | {:.4} |",
            line.feature, paper_xi[i], xi, paper_pi[i], line.weight
        );
    }
    let _ = writeln!(
        out,
        "\n* completeness Cp = {:.4} (paper: 8/9 = 0.8889)",
        ts.completeness()
    );
    if let Some(totals) = ts.breakdown().criteria_totals {
        let _ = writeln!(
            out,
            "* criteria point totals: R={} A={} T={} V={} (evaluated features sum = {})",
            totals.relevance,
            totals.accuracy,
            totals.timeliness,
            totals.variety,
            totals.total()
        );
    }
    let _ = writeln!(
        out,
        "* **TS(RCE) = {:.4}** (paper: 2.7406; exact closed form 8/9 × 259/84 = {:.4})",
        ts.total(),
        8.0 / 9.0 * 259.0 / 84.0
    );
    out
}

/// Fig. 1: the architecture exercised end to end, with stage counters
/// and throughput.
pub fn fig1() -> String {
    let mut out = String::from("## Fig. 1 — Architecture / pipeline throughput\n\n");
    let _ = writeln!(
        out,
        "| feeds | records | dup rate | dropped | cIoCs | rIoCs | records/s |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for (feeds, per_feed, dup) in [(2usize, 250usize, 0.1f64), (4, 250, 0.3), (8, 250, 0.5)] {
        let mut platform = workloads::platform();
        let mut records =
            workloads::record_stream(7, feeds, per_feed, dup, 0.2, platform.context().now);
        records.push(workloads::struts_advisory(platform.context()));
        let total = records.len();
        let start = Instant::now();
        let report = platform.ingest_feed_records(records).expect("ingestion");
        let elapsed = start.elapsed().as_secs_f64();
        let _ = writeln!(
            out,
            "| {} | {} | {:.0}% | {} | {} | {} | {:.0} |",
            feeds,
            total,
            dup * 100.0,
            report.duplicates_dropped,
            report.ciocs,
            report.riocs,
            total as f64 / elapsed,
        );
    }
    out
}

/// Fig. 2: the dashboard, rendered.
pub fn fig2() -> String {
    let mut platform = workloads::platform();
    let inventory = Inventory::paper_table3();
    let packets = cais_infra::sensors::nids::generate_traffic(
        5,
        400,
        0.1,
        &inventory,
        platform.context().now,
    );
    platform.ingest_packets(&packets);
    platform
        .ingest_feed_records(vec![workloads::struts_advisory(platform.context())])
        .expect("ingestion");
    let mut state = DashboardState::new(inventory);
    for alarm in platform.context().alarms.read().iter() {
        state.apply_alarm(alarm.clone());
    }
    for rioc in platform.riocs() {
        state.apply_rioc(rioc.clone());
    }
    let mut out = String::from("## Fig. 2 — Dashboard\n\n```text\n");
    out.push_str(&render::ascii(&state));
    out.push_str("```\n");
    out
}

/// Fig. 3: node visualization data for the affected node.
pub fn fig3() -> String {
    let mut platform = workloads::platform();
    platform
        .ingest_feed_records(vec![workloads::struts_advisory(platform.context())])
        .expect("ingestion");
    let mut state = DashboardState::new(Inventory::paper_table3());
    for rioc in platform.riocs() {
        state.apply_rioc(rioc.clone());
    }
    let view = NodeView::build(&state, NodeId(4)).expect("node 4");
    let mut out = String::from("## Fig. 3 — Node visualization data\n\n");
    let _ = writeln!(out, "* node: {} ({:?})", view.name, view.node_type);
    let _ = writeln!(out, "* operating system: {}", view.operating_system);
    let _ = writeln!(out, "* known IPs: {:?}", view.known_ips);
    let _ = writeln!(out, "* networks: {:?}", view.networks);
    let _ = writeln!(
        out,
        "* badge: alarms={} rIoCs={}",
        view.badge.alarm_count(),
        view.badge.riocs
    );
    for line in &view.rioc_summaries {
        let _ = writeln!(out, "* rIoC: {line}");
    }
    out
}

/// Fig. 4: the security-issue detail.
pub fn fig4() -> String {
    let mut platform = workloads::platform();
    platform
        .ingest_feed_records(vec![workloads::struts_advisory(platform.context())])
        .expect("ingestion");
    let rioc = &platform.riocs()[0];
    let issue = SecurityIssue::from_rioc(rioc, &Inventory::paper_table3());
    let mut out = String::from("## Fig. 4 — Security issue detail\n\n");
    let _ = writeln!(out, "* CVE: {}", issue.cve.as_deref().unwrap_or("-"));
    let _ = writeln!(out, "* description: {}", issue.description);
    let _ = writeln!(
        out,
        "* affected: {} on {}",
        issue.affected_application.as_deref().unwrap_or("-"),
        issue.affected_nodes.join(", ")
    );
    let _ = writeln!(
        out,
        "* threat score: {:.4} [{}]",
        issue.threat_score, issue.priority
    );
    let _ = writeln!(out, "* stored eIoC: MISP event {:?}", issue.misp_event_id);
    out
}

/// Prose II-A: deduplication/aggregation load reduction across a
/// duplication-rate sweep.
pub fn dedup_sweep() -> String {
    let mut out = String::from("## Dedup/aggregation — analyst-load reduction\n\n");
    let _ = writeln!(
        out,
        "| dup rate | overlap | in | out (unique) | reduction |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for (dup, overlap) in [(0.0, 0.0), (0.2, 0.2), (0.4, 0.3), (0.6, 0.4), (0.8, 0.5)] {
        let mut platform = workloads::platform();
        let records = workloads::record_stream(3, 4, 300, dup, overlap, platform.context().now);
        let total = records.len();
        let report = platform.ingest_feed_records(records).expect("ingestion");
        let kept = report.records_in - report.duplicates_dropped;
        let _ = writeln!(
            out,
            "| {:.0}% | {:.0}% | {} | {} | {:.1}% |",
            dup * 100.0,
            overlap * 100.0,
            total,
            kept,
            100.0 * report.duplicates_dropped as f64 / total as f64,
        );
    }
    out
}

/// Prose III: eIoC→rIoC size reduction.
pub fn reduction_ratio() -> String {
    let mut platform = workloads::platform();
    platform
        .ingest_feed_records(vec![workloads::struts_advisory(platform.context())])
        .expect("ingestion");
    let eioc = &platform.eiocs()[0];
    let rioc = &platform.riocs()[0];
    let eioc_bytes = serde_json::to_string(eioc).expect("eioc json").len();
    let rioc_bytes = serde_json::to_string(rioc).expect("rioc json").len();
    let mut out = String::from("## rIoC size reduction\n\n");
    let _ = writeln!(out, "* eIoC (stored/shared form): {eioc_bytes} bytes");
    let _ = writeln!(out, "* rIoC (dashboard form): {rioc_bytes} bytes");
    let _ = writeln!(
        out,
        "* reduction: {:.1}× smaller",
        eioc_bytes as f64 / rioc_bytes as f64
    );
    out
}

/// Future work: detection / false-positive / false-negative comparison
/// against the static baseline.
pub fn baseline_comparison() -> String {
    let ctx = EvaluationContext::paper_use_case();
    let population = labeled_population(11, 600, 0.3, &ctx);
    let aware = evaluate_detection(Approach::ContextAware, &population, &ctx);
    let fixed = evaluate_detection(Approach::Static { threshold: 3.5 }, &population, &ctx);
    let mut out = String::from("## Context-aware vs static detection\n\n");
    let _ = writeln!(
        out,
        "| approach | detection | FP rate | precision | TP/FP/FN/TN |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for (name, m) in [
        ("context-aware (rIoC)", aware),
        ("static (CVSS ≥ 3.5)", fixed),
    ] {
        let _ = writeln!(
            out,
            "| {name} | {:.1}% | {:.1}% | {:.1}% | {}/{}/{}/{} |",
            m.detection_rate() * 100.0,
            m.false_positive_rate() * 100.0,
            m.precision() * 100.0,
            m.true_positives,
            m.false_positives,
            m.false_negatives,
            m.true_negatives,
        );
    }
    out
}

/// Section II-A: the NLP triage component — classification and
/// infrastructure-aware relevance tagging.
pub fn nlp_triage() -> String {
    use cais_nlp::relevance;
    let mut out = String::from("## NLP triage (Section II-A)\n\n");
    let products: Vec<String> = Inventory::paper_table3()
        .all_applications()
        .into_iter()
        .map(str::to_owned)
        .collect();
    let samples = [
        "Remote code execution exploit published for Apache Struts",
        "Nueva fuga de información tras acceso no autorizado a GitLab",
        "Ransomware campaign hits SharePoint deployments",
        "Quarterly earnings beat analyst expectations",
    ];
    let _ = writeln!(out, "| text | relevant | confidence | matched products |");
    let _ = writeln!(out, "|---|---|---|---|");
    for sample in samples {
        let tag = relevance::tag(sample, &products);
        let _ = writeln!(
            out,
            "| {} | {} | {:.2} | {} |",
            sample,
            if tag.relevant { "yes" } else { "no" },
            tag.confidence,
            if tag.matched_products.is_empty() {
                "—".to_owned()
            } else {
                tag.matched_products.join(", ")
            },
        );
    }
    out
}

/// Detection replay: shared indicators firing on live traffic and the
/// resulting score delta.
pub fn detection_replay() -> String {
    use cais_infra::sensors::nids;
    let mut out = String::from("## Detection replay (indicators → sightings → scores)\n\n");
    let mut platform = workloads::platform();
    let stamp = platform.context().now.add_days(-1);
    let mut indicator =
        cais_stix::sdo::Indicator::builder("[ipv4-addr:value = '203.0.113.77']", stamp);
    indicator
        .name("partner-c2")
        .label("malicious-activity")
        .created(stamp)
        .modified(stamp);
    let bundle = cais_stix::Bundle::new(vec![indicator.build().into()]);
    platform.ingest_stix_bundle(&bundle).expect("ingest bundle");
    let packet = nids::Packet {
        at: platform.context().now,
        src_ip: "203.0.113.77".into(),
        dst_ip: "192.168.1.11".into(),
        dst_port: 443,
        payload: "tls".into(),
    };
    platform.ingest_packets(&[packet]);
    let _ = writeln!(out, "* indicators armed: {}", platform.armed_indicators());
    let _ = writeln!(out, "* detections fired: {}", platform.detections().len());

    // Score the corroborated advisory vs a cold platform.
    let advisory = |p: &cais_core::Platform| {
        cais_feeds::FeedRecord::new(
            cais_common::Observable::new(cais_common::ObservableKind::Ipv4, "203.0.113.77"),
            cais_feeds::ThreatCategory::CommandAndControl,
            "partner-feed",
            p.context().now.add_days(-2),
        )
        .with_description("emotet c2 node")
    };
    platform
        .ingest_feed_records(vec![advisory(&platform)])
        .expect("ingest");
    let corroborated = platform.eiocs().last().expect("eioc").score();
    let mut cold = workloads::platform();
    cold.ingest_feed_records(vec![advisory(&cold)])
        .expect("ingest");
    let cold_score = cold.eiocs().last().expect("eioc").score();
    let _ = writeln!(
        out,
        "* corroborated advisory: TS={corroborated:.4} vs cold TS={cold_score:.4} \
         (+{:.4} from infrastructure confirmation)",
        corroborated - cold_score
    );
    out
}

/// Measured inputs for [`reduce_bench_doc`], produced by the
/// `reduce_json` binary (and reproducible via the `reduce_scale`
/// criterion bench).
#[derive(Debug, Clone, Copy)]
pub struct ReduceBenchMeasurement {
    /// Fleet size of the synthetic inventory.
    pub nodes: usize,
    /// eIoCs pushed through the indexed reducer.
    pub eiocs: usize,
    /// eIoCs pushed through the linear baseline (a prefix slice; the
    /// full population would take minutes at baseline speed).
    pub linear_sample: usize,
    /// Wall time of the indexed pass over all `eiocs`.
    pub indexed_nanos: u64,
    /// Wall time of the linear pass over `linear_sample` eIoCs.
    pub linear_nanos: u64,
    /// rIoCs the indexed pass produced.
    pub riocs: usize,
    /// Reducer cache stats after the indexed pass.
    pub stats: cais_core::ReduceCacheStats,
}

impl ReduceBenchMeasurement {
    /// Per-eIoC wall time of the indexed reducer.
    pub fn indexed_nanos_per_eioc(&self) -> f64 {
        self.indexed_nanos as f64 / self.eiocs.max(1) as f64
    }

    /// Per-eIoC wall time of the linear baseline.
    pub fn linear_nanos_per_eioc(&self) -> f64 {
        self.linear_nanos as f64 / self.linear_sample.max(1) as f64
    }

    /// Per-eIoC speedup of the index over the linear scan.
    pub fn speedup(&self) -> f64 {
        self.linear_nanos_per_eioc() / self.indexed_nanos_per_eioc().max(f64::MIN_POSITIVE)
    }
}

/// The committed `BENCH_reduce.json` schema: workload shape, both
/// passes' absolute and per-element timings, the derived speedup and
/// the reducer's cache counters. CI uploads this as an artifact for
/// trend tracking next to `BENCH_pipeline.json`.
pub fn reduce_bench_doc(m: &ReduceBenchMeasurement) -> serde_json::Value {
    serde_json::json!({
        "benchmark": "reduce_json",
        "workload": {
            "nodes": m.nodes,
            "eiocs": m.eiocs,
            "linear_sample": m.linear_sample,
        },
        "indexed": {
            "wall_nanos": m.indexed_nanos,
            "nanos_per_eioc": m.indexed_nanos_per_eioc(),
            "eiocs_per_sec": 1e9 / m.indexed_nanos_per_eioc().max(f64::MIN_POSITIVE),
            "riocs": m.riocs,
        },
        "linear_baseline": {
            "wall_nanos": m.linear_nanos,
            "nanos_per_eioc": m.linear_nanos_per_eioc(),
            "eiocs_per_sec": 1e9 / m.linear_nanos_per_eioc().max(f64::MIN_POSITIVE),
        },
        "speedup": m.speedup(),
        "caches": {
            "index_rebuilds": m.stats.index_rebuilds,
            "cve_memo_hits": m.stats.cve_memo_hits,
            "cve_memo_misses": m.stats.cve_memo_misses,
            "match_memo_hits": m.stats.match_memo_hits,
            "match_memo_misses": m.stats.match_memo_misses,
            "match_memo_evictions": m.stats.match_memo_evictions,
        },
    })
}

/// Measured inputs for [`share_bench_doc`], produced by the
/// `share_json` binary (and reproducible via the `share_scale`
/// criterion bench).
#[derive(Debug, Clone, Copy)]
pub struct ShareBenchMeasurement {
    /// Events in the store.
    pub events: usize,
    /// Total pulls performed (cold + warm).
    pub pulls: usize,
    /// Events mutated between the warm and churn pulls.
    pub churned: usize,
    /// Wall time of the naive full re-serialization pull.
    pub naive_nanos: u64,
    /// Wall time of the first cached pull (all misses).
    pub cold_nanos: u64,
    /// Best wall time among repeat pulls of the unchanged store.
    pub warm_nanos: u64,
    /// Wall time of the pull after churning `churned` events.
    pub churn_nanos: u64,
    /// Size of one pull's output.
    pub pull_bytes: usize,
    /// Whether cached pull bytes matched the naive export exactly.
    pub equivalent: bool,
    /// Whether serial and parallel STIX bundle assembly agreed.
    pub stix_parallel_matches: bool,
    /// Share-cache counters after the run.
    pub stats: cais_misp::ShareCacheStats,
}

impl ShareBenchMeasurement {
    /// Warm-pull speedup over the naive full re-serialization.
    pub fn warm_speedup(&self) -> f64 {
        self.naive_nanos as f64 / (self.warm_nanos as f64).max(1.0)
    }

    /// Churn-pull speedup over the naive full re-serialization.
    pub fn churn_speedup(&self) -> f64 {
        self.naive_nanos as f64 / (self.churn_nanos as f64).max(1.0)
    }
}

/// The committed `BENCH_share.json` schema: workload shape, the naive
/// baseline and the cold/warm/churn cached pulls, derived speedups,
/// the byte-equivalence verdicts and the share-cache counters. CI
/// uploads this as an artifact next to `BENCH_pipeline.json` and
/// `BENCH_reduce.json`.
pub fn share_bench_doc(m: &ShareBenchMeasurement) -> serde_json::Value {
    serde_json::json!({
        "benchmark": "share_json",
        "workload": {
            "events": m.events,
            "pulls": m.pulls,
            "churned": m.churned,
        },
        "naive": { "wall_nanos": m.naive_nanos },
        "cold": { "wall_nanos": m.cold_nanos },
        "warm": {
            "wall_nanos": m.warm_nanos,
            "speedup_vs_naive": m.warm_speedup(),
        },
        "churn": {
            "wall_nanos": m.churn_nanos,
            "speedup_vs_naive": m.churn_speedup(),
        },
        "pull_bytes": m.pull_bytes,
        "equivalence": {
            "cached_matches_naive": m.equivalent,
            "stix_serial_matches_parallel": m.stix_parallel_matches,
        },
        "caches": {
            "hits": m.stats.hits,
            "misses": m.stats.misses,
            "evictions": m.stats.evictions,
            "entries": m.stats.entries,
            "bytes": m.stats.bytes,
            "assembled_hits": m.stats.assembled_hits,
            "assembled_misses": m.stats.assembled_misses,
        },
    })
}

/// Measured inputs for [`decay_bench_doc`], produced by the
/// `decay_json` binary.
#[derive(Debug, Clone, Copy)]
pub struct DecayBenchMeasurement {
    /// Events in the store.
    pub events: usize,
    /// Events mutated between the warm passes (version churn).
    pub churned: usize,
    /// Sightings recorded before the passes.
    pub sightings: usize,
    /// Wall time of the from-scratch rescore (every base re-derived).
    pub full_nanos: u64,
    /// Wall time of the first incremental pass (cold: all bases derived).
    pub cold_nanos: u64,
    /// Best wall time among incremental passes after churn.
    pub incremental_nanos: u64,
    /// Events whose base was re-derived in the measured incremental pass.
    pub rebased: usize,
    /// Events whose cached base was reused in that pass.
    pub reused: usize,
    /// Events expired (below threshold) after the final pass.
    pub expired: usize,
    /// Whether incremental and from-scratch scores matched exactly.
    pub equivalent: bool,
}

impl DecayBenchMeasurement {
    /// Incremental-pass speedup over the from-scratch rescore.
    pub fn speedup(&self) -> f64 {
        self.full_nanos as f64 / (self.incremental_nanos as f64).max(1.0)
    }

    /// Events scored per second on the incremental path.
    pub fn incremental_events_per_sec(&self) -> f64 {
        self.events as f64 / (self.incremental_nanos as f64 / 1e9).max(f64::MIN_POSITIVE)
    }
}

/// The committed `BENCH_decay.json` schema: workload shape, the
/// from-scratch baseline, the cold and post-churn incremental passes,
/// the derived speedup and the equivalence verdict. CI uploads this as
/// an artifact next to the other `BENCH_*.json` files.
pub fn decay_bench_doc(m: &DecayBenchMeasurement) -> serde_json::Value {
    serde_json::json!({
        "benchmark": "decay_json",
        "workload": {
            "events": m.events,
            "churned": m.churned,
            "sightings": m.sightings,
        },
        "full": { "wall_nanos": m.full_nanos },
        "cold": { "wall_nanos": m.cold_nanos },
        "incremental": {
            "wall_nanos": m.incremental_nanos,
            "events_per_sec": m.incremental_events_per_sec(),
            "rebased": m.rebased,
            "reused": m.reused,
        },
        "expired": m.expired,
        "speedup": m.speedup(),
        "equivalence": { "incremental_matches_full": m.equivalent },
    })
}

/// Measured inputs for [`trace_bench_doc`], produced by the
/// `trace_json` binary: the same seeded ingest workload run with
/// tracing disabled (baseline), fully traced, and 1-in-N sampled, each
/// timed as the best of `reps` fresh-platform passes.
#[derive(Debug, Clone, Copy)]
pub struct TraceBenchMeasurement {
    /// Feed records ingested per pass (across all rounds).
    pub records: usize,
    /// Ingestion rounds per pass.
    pub rounds: usize,
    /// Fresh-platform repetitions per configuration (best kept).
    pub reps: usize,
    /// Worker threads of the parallel ingest path.
    pub workers: usize,
    /// Best wall time with the tracer disabled.
    pub baseline_nanos: u64,
    /// Best wall time with full causal tracing (every root sampled).
    pub traced_nanos: u64,
    /// Best wall time with 1-in-`sample_every` root sampling.
    pub sampled_nanos: u64,
    /// The sampling stride of the sampled configuration.
    pub sample_every: u64,
    /// Spans buffered across all subsystem rings after a traced pass.
    pub spans_recorded: usize,
}

impl TraceBenchMeasurement {
    /// Percent overhead of full tracing over the disabled baseline.
    pub fn traced_overhead_pct(&self) -> f64 {
        (self.traced_nanos as f64 / (self.baseline_nanos as f64).max(1.0) - 1.0) * 100.0
    }

    /// Percent overhead of sampled tracing over the disabled baseline.
    pub fn sampled_overhead_pct(&self) -> f64 {
        (self.sampled_nanos as f64 / (self.baseline_nanos as f64).max(1.0) - 1.0) * 100.0
    }

    /// Records ingested per second with full tracing — the headline
    /// [`crate::compare`] guards.
    pub fn traced_records_per_sec(&self) -> f64 {
        self.records as f64 / (self.traced_nanos as f64 / 1e9).max(f64::MIN_POSITIVE)
    }

    /// Records ingested per second with tracing disabled.
    pub fn baseline_records_per_sec(&self) -> f64 {
        self.records as f64 / (self.baseline_nanos as f64 / 1e9).max(f64::MIN_POSITIVE)
    }
}

/// The committed `BENCH_trace.json` schema: workload shape, the three
/// timed configurations and the derived overhead percentages, plus the
/// bar the run is held to (<5% full-tracing overhead; sampling no
/// slower than full tracing). CI uploads this as an artifact next to
/// the other `BENCH_*.json` files.
pub fn trace_bench_doc(m: &TraceBenchMeasurement) -> serde_json::Value {
    serde_json::json!({
        "benchmark": "trace_json",
        "workload": {
            "records": m.records,
            "rounds": m.rounds,
            "reps": m.reps,
            "workers": m.workers,
        },
        "baseline": {
            "wall_nanos": m.baseline_nanos,
            "records_per_sec": m.baseline_records_per_sec(),
        },
        "traced": {
            "wall_nanos": m.traced_nanos,
            "records_per_sec": m.traced_records_per_sec(),
            "overhead_pct": m.traced_overhead_pct(),
            "spans_recorded": m.spans_recorded,
        },
        "sampled": {
            "wall_nanos": m.sampled_nanos,
            "overhead_pct": m.sampled_overhead_pct(),
            "sample_every": m.sample_every,
        },
        "bar": {
            "max_overhead_pct": 5.0,
            "within": m.traced_overhead_pct() < 5.0,
            "sampled_not_slower": m.sampled_nanos as f64 <= m.traced_nanos as f64 * 1.10,
        },
    })
}

/// Aggregate pull-throughput multiple the multiplexed core must hold
/// over the thread-per-connection baseline.
pub const SERVE_BAR_MIN_SPEEDUP: f64 = 5.0;

/// Concurrency the [`SERVE_BAR_MIN_SPEEDUP`] bar is defined at: below
/// this the baseline is not in its thrash regime and the comparison
/// measures thread spawn cost, not scheduling collapse.
pub const SERVE_BAR_MIN_CONNECTIONS: usize = 1_000;

/// Measured inputs for [`serve_bench_doc`], produced by the `loadgen`
/// binary: a poll-churn pull workload (connect → pull → close, the
/// HTTP-polling shape real TAXII consumers have) driven at
/// `connections` concurrent connections against the thread-per-
/// connection baseline and the multiplexed core, plus a high-scale
/// mixed ingest/pull/search/scrape run against the core alone.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchMeasurement {
    /// Concurrent connections during the baseline-vs-core comparison.
    pub connections: usize,
    /// Completed pull polls per side of the comparison.
    pub polls: usize,
    /// Wall time for the thread-per-connection baseline to serve all
    /// polls.
    pub baseline_nanos: u64,
    /// Wall time for the multiplexed core to serve the same polls.
    pub multiplexed_nanos: u64,
    /// Client-observed p50 request→response latency on the core, from
    /// the log₂ histograms.
    pub p50_nanos: u64,
    /// Client-observed p95 latency on the core.
    pub p95_nanos: u64,
    /// Client-observed p99 latency on the core.
    pub p99_nanos: u64,
    /// Completed search polls (match-filtered pulls) in the high-scale
    /// mixed run.
    pub search_polls: u64,
    /// Client-observed p50 latency of the mixed run's search polls.
    pub search_p50_nanos: u64,
    /// Client-observed p95 latency of the search polls.
    pub search_p95_nanos: u64,
    /// Client-observed p99 latency of the search polls.
    pub search_p99_nanos: u64,
    /// Concurrent connections of the high-scale mixed run.
    pub high_scale_connections: usize,
    /// Responses the high-scale run expected (one per connection).
    pub high_scale_expected: u64,
    /// Responses the high-scale run actually received.
    pub high_scale_responses: u64,
    /// Wall time of the high-scale run.
    pub high_scale_nanos: u64,
}

impl ServeBenchMeasurement {
    /// Polls served per second by the thread-per-connection baseline.
    pub fn baseline_polls_per_sec(&self) -> f64 {
        self.polls as f64 / (self.baseline_nanos as f64 / 1e9).max(f64::MIN_POSITIVE)
    }

    /// Polls served per second by the multiplexed core — the headline
    /// [`crate::compare`] guards.
    pub fn multiplexed_polls_per_sec(&self) -> f64 {
        self.polls as f64 / (self.multiplexed_nanos as f64 / 1e9).max(f64::MIN_POSITIVE)
    }

    /// Aggregate pull-throughput multiple of the core over the
    /// baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_nanos as f64 / (self.multiplexed_nanos as f64).max(1.0)
    }

    /// Responses the high-scale run failed to receive.
    pub fn high_scale_dropped(&self) -> u64 {
        self.high_scale_expected
            .saturating_sub(self.high_scale_responses)
    }
}

/// The committed `BENCH_serve.json` schema: the comparison workload,
/// both sides' throughput, the core's client-observed latency
/// percentiles, the mixed run's match-filtered search-poll latency
/// percentiles, the high-scale zero-drop run, and the bars the run is
/// held to (≥5× pull throughput at ≥1k connections; zero dropped
/// responses at high scale). CI uploads this as an artifact next to the
/// other `BENCH_*.json` files.
pub fn serve_bench_doc(m: &ServeBenchMeasurement) -> serde_json::Value {
    serde_json::json!({
        "benchmark": "serve_json",
        "workload": {
            "connections": m.connections,
            "polls": m.polls,
            "scenario": "poll-churn pull (connect, pull, close)",
        },
        "baseline": {
            "wall_nanos": m.baseline_nanos,
            "polls_per_sec": m.baseline_polls_per_sec(),
        },
        "multiplexed": {
            "wall_nanos": m.multiplexed_nanos,
            "polls_per_sec": m.multiplexed_polls_per_sec(),
            "latency": {
                "p50_nanos": m.p50_nanos,
                "p95_nanos": m.p95_nanos,
                "p99_nanos": m.p99_nanos,
            },
        },
        "speedup": m.speedup(),
        "search": {
            "responses": m.search_polls,
            "latency": {
                "p50_nanos": m.search_p50_nanos,
                "p95_nanos": m.search_p95_nanos,
                "p99_nanos": m.search_p99_nanos,
            },
        },
        "high_scale": {
            "connections": m.high_scale_connections,
            "expected_responses": m.high_scale_expected,
            "responses": m.high_scale_responses,
            "dropped": m.high_scale_dropped(),
            "wall_nanos": m.high_scale_nanos,
        },
        "bar": {
            "min_speedup": SERVE_BAR_MIN_SPEEDUP,
            "min_connections": SERVE_BAR_MIN_CONNECTIONS,
            "at_bar_scale": m.connections >= SERVE_BAR_MIN_CONNECTIONS,
            "within": m.speedup() >= SERVE_BAR_MIN_SPEEDUP,
            "zero_dropped": m.high_scale_dropped() == 0,
        },
    })
}

/// Measured inputs for [`federation_bench_doc`], produced by the
/// `federation_json` binary: a mesh of real framed-TCP federation
/// peers run to the policy-filtered fixpoint twice — fault-free
/// (timed: the sync-throughput headline) and under seeded wire chaos
/// (the convergence-robustness half of the claim).
#[derive(Debug, Clone, Copy)]
pub struct FederationBenchMeasurement {
    /// Peers in the mesh.
    pub peers: usize,
    /// Events seeded round-robin across the peers.
    pub events: usize,
    /// Rounds the fault-free run needed to reach quiescence.
    pub healthy_rounds: u32,
    /// Wall time of the fault-free run to quiescence.
    pub healthy_nanos: u64,
    /// Push frames the fault-free run sent.
    pub healthy_frames: u64,
    /// Event deliveries (receiver-side inserts) across all peers in
    /// the fault-free run.
    pub delivered: u64,
    /// Rounds the chaos run needed to reach quiescence.
    pub chaos_rounds: u32,
    /// Wall time of the chaos run to quiescence.
    pub chaos_nanos: u64,
    /// Frames that failed delivery under chaos.
    pub chaos_failures: u64,
    /// Delivery retries the chaos run spent.
    pub chaos_retries: u64,
    /// Whether the chaos run reached quiescence inside its budget.
    pub chaos_converged: bool,
    /// Whether the chaos run's canonical views byte-match the
    /// fault-free run's — the path-independence claim.
    pub fixpoints_match: bool,
    /// Cross-tenant leaks found across both runs (must be 0).
    pub leaks: usize,
}

impl FederationBenchMeasurement {
    /// Event deliveries per second in the fault-free run — the
    /// headline [`crate::compare`] guards.
    pub fn deliveries_per_sec(&self) -> f64 {
        self.delivered as f64 / (self.healthy_nanos as f64 / 1e9).max(f64::MIN_POSITIVE)
    }

    /// Extra rounds the chaos schedule cost over the fault-free run.
    pub fn chaos_round_overhead(&self) -> u32 {
        self.chaos_rounds.saturating_sub(self.healthy_rounds)
    }
}

/// The committed `BENCH_federation.json` schema: mesh shape, the
/// fault-free run's throughput, the chaos run's cost, and the bars the
/// run is held to (both runs converge, byte-identical fixpoints, zero
/// leaks). CI uploads this as an artifact next to the other
/// `BENCH_*.json` files.
pub fn federation_bench_doc(m: &FederationBenchMeasurement) -> serde_json::Value {
    serde_json::json!({
        "benchmark": "federation_json",
        "workload": {
            "peers": m.peers,
            "topology": "mesh",
            "events": m.events,
        },
        "healthy": {
            "wall_nanos": m.healthy_nanos,
            "rounds": m.healthy_rounds,
            "frames": m.healthy_frames,
            "delivered": m.delivered,
            "deliveries_per_sec": m.deliveries_per_sec(),
        },
        "chaos": {
            "wall_nanos": m.chaos_nanos,
            "rounds": m.chaos_rounds,
            "round_overhead": m.chaos_round_overhead(),
            "failures": m.chaos_failures,
            "retries": m.chaos_retries,
            "converged": m.chaos_converged,
        },
        "bar": {
            "chaos_converged": m.chaos_converged,
            "fixpoints_match": m.fixpoints_match,
            "zero_leaks": m.leaks == 0,
            "within": m.chaos_converged && m.fixpoints_match && m.leaks == 0,
        },
    })
}

/// Client-observed p99 ceiling, in nanoseconds, for one indexed query
/// over the million-attribute population — the sub-millisecond bar the
/// `search_json` run is held to while churn writers run concurrently.
pub const SEARCH_BAR_MAX_P99_NANOS: u64 = 1_000_000;

/// Minimum speedup of an incremental index sync (after ~1% churn) over
/// a from-scratch rebuild — the point of riding the store changelog.
pub const SEARCH_BAR_MIN_INCREMENTAL_SPEEDUP: f64 = 5.0;

/// Measured inputs for [`search_bench_doc`], produced by the
/// `search_json` binary: an inverted index built over a
/// million-attribute store, queried across every language axis while a
/// churn writer mutates events, then an incremental sync timed against
/// a full rebuild over the same churn.
#[derive(Debug, Clone, Copy)]
pub struct SearchBenchMeasurement {
    /// Events in the store.
    pub events: usize,
    /// Attributes across those events.
    pub attributes: usize,
    /// Timed queries executed.
    pub queries: usize,
    /// Store mutations the concurrent churn writer landed during the
    /// timed query window.
    pub churn_ops: u64,
    /// Wall time of the cold build (first sync over the full store).
    pub cold_build_nanos: u64,
    /// Total wall time of the timed query loop (queries only, syncs
    /// excluded).
    pub query_wall_nanos: u64,
    /// Exact p50 single-query latency.
    pub p50_nanos: u64,
    /// Exact p95 single-query latency.
    pub p95_nanos: u64,
    /// Exact p99 single-query latency.
    pub p99_nanos: u64,
    /// Events returned across all timed queries.
    pub hits: u64,
    /// Events churned before the incremental-vs-rebuild comparison.
    pub churned: usize,
    /// Wall time of the incremental sync absorbing that churn.
    pub incremental_sync_nanos: u64,
    /// Wall time of the from-scratch rebuild over the same store.
    pub rebuild_nanos: u64,
    /// Whether indexed results matched the linear-scan oracle on every
    /// equivalence probe.
    pub equivalent: bool,
}

impl SearchBenchMeasurement {
    /// Queries answered per second — the headline [`crate::compare`]
    /// guards.
    pub fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / (self.query_wall_nanos as f64 / 1e9).max(f64::MIN_POSITIVE)
    }

    /// Incremental-sync speedup over the from-scratch rebuild.
    pub fn incremental_speedup(&self) -> f64 {
        self.rebuild_nanos as f64 / (self.incremental_sync_nanos as f64).max(1.0)
    }

    /// Whether the run clears every bar.
    pub fn within_bar(&self) -> bool {
        self.p99_nanos < SEARCH_BAR_MAX_P99_NANOS
            && self.incremental_speedup() >= SEARCH_BAR_MIN_INCREMENTAL_SPEEDUP
            && self.equivalent
    }
}

/// The committed `BENCH_search.json` schema: workload shape, the cold
/// build, the under-churn query percentiles, the incremental-vs-rebuild
/// comparison, the equivalence verdict, and the bars the run is held to
/// (sub-millisecond p99; ≥5× incremental speedup). CI uploads this as
/// an artifact next to the other `BENCH_*.json` files.
pub fn search_bench_doc(m: &SearchBenchMeasurement) -> serde_json::Value {
    serde_json::json!({
        "benchmark": "search_json",
        "workload": {
            "events": m.events,
            "attributes": m.attributes,
            "queries": m.queries,
            "churn_ops": m.churn_ops,
        },
        "cold_build": { "wall_nanos": m.cold_build_nanos },
        "query": {
            "wall_nanos": m.query_wall_nanos,
            "queries_per_sec": m.queries_per_sec(),
            "hits": m.hits,
            "latency": {
                "p50_nanos": m.p50_nanos,
                "p95_nanos": m.p95_nanos,
                "p99_nanos": m.p99_nanos,
            },
        },
        "incremental": {
            "churned": m.churned,
            "sync_nanos": m.incremental_sync_nanos,
            "rebuild_nanos": m.rebuild_nanos,
            "speedup": m.incremental_speedup(),
        },
        "equivalence": { "indexed_matches_linear": m.equivalent },
        "bar": {
            "max_p99_nanos": SEARCH_BAR_MAX_P99_NANOS,
            "min_incremental_speedup": SEARCH_BAR_MIN_INCREMENTAL_SPEEDUP,
            "within": m.within_bar(),
        },
    })
}

/// Every section in order.
pub fn full_report() -> String {
    [
        table1(),
        table2(),
        table3(),
        table4(),
        table5(),
        fig1(),
        fig2(),
        fig3(),
        fig4(),
        dedup_sweep(),
        reduction_ratio(),
        baseline_comparison(),
        nlp_triage(),
        detection_replay(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_section_renders() {
        let report = full_report();
        for heading in [
            "Table I",
            "Table II",
            "Table III",
            "Table IV",
            "Table V",
            "Fig. 1",
            "Fig. 2",
            "Fig. 3",
            "Fig. 4",
            "Dedup",
            "size reduction",
            "static detection",
        ] {
            assert!(report.contains(heading), "{heading} missing");
        }
        // The headline numbers are present.
        assert!(report.contains("2.7406") || report.contains("2.7407"));
        assert!(report.contains("3.15"));
    }

    #[test]
    fn table1_all_match() {
        let t = table1();
        assert_eq!(t.matches('✓').count(), 3);
        assert_eq!(t.matches('✗').count(), 0);
    }

    #[test]
    fn share_bench_doc_schema() {
        let m = ShareBenchMeasurement {
            events: 10_000,
            pulls: 3,
            churned: 100,
            naive_nanos: 50_000_000,
            cold_nanos: 60_000_000,
            warm_nanos: 5_000_000,
            churn_nanos: 10_000_000,
            pull_bytes: 1_000_000,
            equivalent: true,
            stix_parallel_matches: true,
            stats: cais_misp::ShareCacheStats::default(),
        };
        let doc = share_bench_doc(&m);
        assert_eq!(doc["benchmark"], "share_json");
        assert_eq!(doc["workload"]["events"], 10_000);
        assert_eq!(doc["equivalence"]["cached_matches_naive"], true);
        assert_eq!(doc["equivalence"]["stix_serial_matches_parallel"], true);
        // 50 ms naive vs 5 ms warm → 10×.
        assert!((doc["warm"]["speedup_vs_naive"].as_f64().unwrap() - 10.0).abs() < 1e-9);
        for key in [
            "hits",
            "misses",
            "evictions",
            "entries",
            "bytes",
            "assembled_hits",
            "assembled_misses",
        ] {
            assert!(doc["caches"].get(key).is_some(), "missing caches.{key}");
        }
    }

    #[test]
    fn decay_bench_doc_schema() {
        let m = DecayBenchMeasurement {
            events: 1_000_000,
            churned: 10_000,
            sightings: 5_000,
            full_nanos: 800_000_000,
            cold_nanos: 850_000_000,
            incremental_nanos: 80_000_000,
            rebased: 10_000,
            reused: 990_000,
            expired: 123_456,
            equivalent: true,
        };
        let doc = decay_bench_doc(&m);
        assert_eq!(doc["benchmark"], "decay_json");
        assert_eq!(doc["workload"]["events"], 1_000_000);
        assert_eq!(doc["incremental"]["rebased"], 10_000);
        assert_eq!(doc["equivalence"]["incremental_matches_full"], true);
        // 800 ms full vs 80 ms incremental → 10×.
        assert!((doc["speedup"].as_f64().unwrap() - 10.0).abs() < 1e-9);
        assert!(doc["incremental"]["events_per_sec"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn serve_bench_doc_schema() {
        let m = ServeBenchMeasurement {
            connections: 1_000,
            polls: 5_000,
            baseline_nanos: 10_000_000_000,
            multiplexed_nanos: 1_000_000_000,
            p50_nanos: 200_000,
            p95_nanos: 900_000,
            p99_nanos: 2_000_000,
            search_polls: 1_000,
            search_p50_nanos: 300_000,
            search_p95_nanos: 1_200_000,
            search_p99_nanos: 2_500_000,
            high_scale_connections: 10_000,
            high_scale_expected: 10_000,
            high_scale_responses: 10_000,
            high_scale_nanos: 4_000_000_000,
        };
        let doc = serve_bench_doc(&m);
        assert_eq!(doc["benchmark"], "serve_json");
        assert_eq!(doc["workload"]["connections"], 1_000);
        // 10 s baseline vs 1 s multiplexed → 10×, clearing the 5× bar.
        assert!((doc["speedup"].as_f64().unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(doc["bar"]["within"], true);
        assert_eq!(doc["bar"]["zero_dropped"], true);
        assert_eq!(doc["high_scale"]["dropped"], 0);
        assert!(doc["multiplexed"]["polls_per_sec"].as_f64().unwrap() > 0.0);
        assert!(doc["multiplexed"]["latency"]["p99_nanos"].as_u64().unwrap() > 0);
        assert_eq!(doc["search"]["responses"], 1_000);
        assert_eq!(doc["search"]["latency"]["p99_nanos"], 2_500_000);

        // A lossy high-scale run fails the zero-drop bar.
        let lossy = ServeBenchMeasurement {
            high_scale_responses: 9_999,
            ..m
        };
        let doc = serve_bench_doc(&lossy);
        assert_eq!(doc["bar"]["zero_dropped"], false);
        assert_eq!(doc["high_scale"]["dropped"], 1);
    }

    #[test]
    fn federation_bench_doc_schema() {
        let m = FederationBenchMeasurement {
            peers: 8,
            events: 64,
            healthy_rounds: 3,
            healthy_nanos: 1_000_000_000,
            healthy_frames: 500,
            delivered: 448,
            chaos_rounds: 7,
            chaos_nanos: 2_500_000_000,
            chaos_failures: 30,
            chaos_retries: 25,
            chaos_converged: true,
            fixpoints_match: true,
            leaks: 0,
        };
        let doc = federation_bench_doc(&m);
        assert_eq!(doc["benchmark"], "federation_json");
        assert_eq!(doc["workload"]["peers"], 8);
        // 448 deliveries over 1 s.
        assert!((doc["healthy"]["deliveries_per_sec"].as_f64().unwrap() - 448.0).abs() < 1e-9);
        assert_eq!(doc["chaos"]["round_overhead"], 4);
        assert_eq!(doc["bar"]["within"], true);

        // Any failed bar fails the aggregate verdict.
        let leaky = FederationBenchMeasurement { leaks: 1, ..m };
        assert_eq!(federation_bench_doc(&leaky)["bar"]["within"], false);
        let diverged = FederationBenchMeasurement {
            fixpoints_match: false,
            ..m
        };
        assert_eq!(federation_bench_doc(&diverged)["bar"]["within"], false);
    }

    #[test]
    fn search_bench_doc_schema() {
        let m = SearchBenchMeasurement {
            events: 200_000,
            attributes: 1_000_000,
            queries: 5_000,
            churn_ops: 40_000,
            cold_build_nanos: 2_000_000_000,
            query_wall_nanos: 1_000_000_000,
            p50_nanos: 50_000,
            p95_nanos: 300_000,
            p99_nanos: 800_000,
            hits: 9_000_000,
            churned: 2_000,
            incremental_sync_nanos: 20_000_000,
            rebuild_nanos: 2_000_000_000,
            equivalent: true,
        };
        let doc = search_bench_doc(&m);
        assert_eq!(doc["benchmark"], "search_json");
        assert_eq!(doc["workload"]["attributes"], 1_000_000);
        // 5000 queries over 1 s.
        assert!((doc["query"]["queries_per_sec"].as_f64().unwrap() - 5_000.0).abs() < 1e-9);
        assert_eq!(doc["query"]["latency"]["p99_nanos"], 800_000);
        // 2 s rebuild vs 20 ms sync → 100×, clearing the 5× bar.
        assert!((doc["incremental"]["speedup"].as_f64().unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(doc["bar"]["within"], true);

        // Any bar breach fails the aggregate verdict.
        let slow = SearchBenchMeasurement {
            p99_nanos: SEARCH_BAR_MAX_P99_NANOS,
            ..m
        };
        assert_eq!(search_bench_doc(&slow)["bar"]["within"], false);
        let thrashing = SearchBenchMeasurement {
            incremental_sync_nanos: 1_000_000_000,
            ..m
        };
        assert_eq!(search_bench_doc(&thrashing)["bar"]["within"], false);
        let diverged = SearchBenchMeasurement {
            equivalent: false,
            ..m
        };
        assert_eq!(search_bench_doc(&diverged)["bar"]["within"], false);
    }

    #[test]
    fn reduce_bench_doc_schema() {
        let m = ReduceBenchMeasurement {
            nodes: 1000,
            eiocs: 50_000,
            linear_sample: 5_000,
            indexed_nanos: 50_000_000,
            linear_nanos: 50_000_000,
            riocs: 40_000,
            stats: cais_core::ReduceCacheStats::default(),
        };
        let doc = reduce_bench_doc(&m);
        assert_eq!(doc["benchmark"], "reduce_json");
        assert_eq!(doc["workload"]["nodes"], 1000);
        assert_eq!(doc["indexed"]["riocs"], 40_000);
        // 1 µs/eIoC indexed vs 10 µs/eIoC linear → 10×.
        assert!((doc["speedup"].as_f64().unwrap() - 10.0).abs() < 1e-9);
        for key in [
            "index_rebuilds",
            "cve_memo_hits",
            "cve_memo_misses",
            "match_memo_hits",
            "match_memo_misses",
            "match_memo_evictions",
        ] {
            assert!(doc["caches"].get(key).is_some(), "missing caches.{key}");
        }
    }
}
