//! Benchmark trend gating: compare a run's `BENCH_*.json` files
//! against a baseline set and fail on regressions.
//!
//! Each benchmark document carries a `"benchmark"` field naming its
//! schema; this module knows where each schema keeps its *headline*
//! metric (always higher-is-better) and flags any current run whose
//! headline fell more than [`REGRESSION_TOLERANCE`] below the
//! baseline's. Missing baselines are informational, not failures — the
//! first run on a branch, or a freshly added benchmark, has nothing to
//! compare against.

use serde_json::Value;

/// Fraction of the baseline headline a current run may lose before the
/// comparison fails: 0.3 = fail when below 70% of baseline.
pub const REGRESSION_TOLERANCE: f64 = 0.3;

/// The outcome of comparing one benchmark document pair.
#[derive(Debug, Clone, PartialEq)]
pub enum Comparison {
    /// Headline within tolerance (or improved).
    Ok {
        /// Benchmark name (the `"benchmark"` field).
        benchmark: String,
        /// Baseline headline value.
        baseline: f64,
        /// Current headline value.
        current: f64,
    },
    /// Headline fell below `baseline × (1 − tolerance)`.
    Regressed {
        /// Benchmark name.
        benchmark: String,
        /// Baseline headline value.
        baseline: f64,
        /// Current headline value.
        current: f64,
    },
    /// One side is missing or carries no recognisable headline.
    Skipped {
        /// Benchmark name (or file stem when unparsable).
        benchmark: String,
        /// Why the pair was not compared.
        reason: String,
    },
}

impl Comparison {
    /// Whether this outcome should fail the gate.
    pub fn is_regression(&self) -> bool {
        matches!(self, Comparison::Regressed { .. })
    }

    /// One human-readable line for the gate's log.
    pub fn describe(&self) -> String {
        match self {
            Comparison::Ok {
                benchmark,
                baseline,
                current,
            } => format!(
                "OK       {benchmark}: headline {current:.3} vs baseline {baseline:.3} ({:+.1}%)",
                delta_percent(*baseline, *current)
            ),
            Comparison::Regressed {
                benchmark,
                baseline,
                current,
            } => format!(
                "REGRESSED {benchmark}: headline {current:.3} vs baseline {baseline:.3} ({:+.1}%, tolerance -{:.0}%)",
                delta_percent(*baseline, *current),
                REGRESSION_TOLERANCE * 100.0
            ),
            Comparison::Skipped { benchmark, reason } => {
                format!("SKIPPED  {benchmark}: {reason}")
            }
        }
    }
}

fn delta_percent(baseline: f64, current: f64) -> f64 {
    if baseline.abs() < f64::MIN_POSITIVE {
        return 0.0;
    }
    (current - baseline) / baseline * 100.0
}

/// The headline (higher-is-better) metric of a benchmark document, by
/// its `"benchmark"` schema name. Returns `None` for unknown schemas
/// or absent fields.
pub fn headline(doc: &Value) -> Option<(String, f64)> {
    let benchmark = doc.get("benchmark")?.as_str()?.to_owned();
    let value = match benchmark.as_str() {
        "pipeline_json" => {
            let totals = doc.get("totals")?;
            let records = totals.get("records_in")?.as_f64()?;
            let nanos = totals.get("total_nanos")?.as_f64()?;
            if nanos <= 0.0 {
                return None;
            }
            records / (nanos / 1e9)
        }
        "reduce_json" | "decay_json" => doc.get("speedup")?.as_f64()?,
        "share_json" => doc.get("warm")?.get("speedup_vs_naive")?.as_f64()?,
        "trace_json" => doc.get("traced")?.get("records_per_sec")?.as_f64()?,
        "serve_json" => doc.get("multiplexed")?.get("polls_per_sec")?.as_f64()?,
        "search_json" => doc.get("query")?.get("queries_per_sec")?.as_f64()?,
        "federation_json" => doc.get("healthy")?.get("deliveries_per_sec")?.as_f64()?,
        _ => return None,
    };
    Some((benchmark, value))
}

/// Compares one current document against its baseline counterpart
/// (`None` when the baseline artifact lacks the file).
pub fn compare(current: &Value, baseline: Option<&Value>) -> Comparison {
    let Some((benchmark, current_headline)) = headline(current) else {
        return Comparison::Skipped {
            benchmark: current
                .get("benchmark")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_owned(),
            reason: "current run has no recognisable headline metric".to_owned(),
        };
    };
    let Some(baseline_doc) = baseline else {
        return Comparison::Skipped {
            benchmark,
            reason: "no baseline artifact (first run?)".to_owned(),
        };
    };
    let Some((_, baseline_headline)) = headline(baseline_doc) else {
        return Comparison::Skipped {
            benchmark,
            reason: "baseline has no recognisable headline metric".to_owned(),
        };
    };
    if current_headline < baseline_headline * (1.0 - REGRESSION_TOLERANCE) {
        Comparison::Regressed {
            benchmark,
            baseline: baseline_headline,
            current: current_headline,
        }
    } else {
        Comparison::Ok {
            benchmark,
            baseline: baseline_headline,
            current: current_headline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn reduce_doc(speedup: f64) -> Value {
        json!({"benchmark": "reduce_json", "speedup": speedup})
    }

    #[test]
    fn headlines_are_extracted_per_schema() {
        assert_eq!(
            headline(&reduce_doc(12.5)),
            Some(("reduce_json".to_owned(), 12.5))
        );
        assert_eq!(
            headline(&json!({"benchmark": "decay_json", "speedup": 8.0})),
            Some(("decay_json".to_owned(), 8.0))
        );
        assert_eq!(
            headline(&json!({"benchmark": "share_json",
                             "warm": {"speedup_vs_naive": 40.0}})),
            Some(("share_json".to_owned(), 40.0))
        );
        let pipeline = json!({"benchmark": "pipeline_json",
                              "totals": {"records_in": 1000, "total_nanos": 2_000_000_000u64}});
        let (name, rps) = headline(&pipeline).unwrap();
        assert_eq!(name, "pipeline_json");
        assert!((rps - 500.0).abs() < 1e-9);
        assert_eq!(
            headline(&json!({"benchmark": "trace_json",
                             "traced": {"records_per_sec": 38_000.0}})),
            Some(("trace_json".to_owned(), 38_000.0))
        );
        assert_eq!(
            headline(&json!({"benchmark": "serve_json",
                             "multiplexed": {"polls_per_sec": 52_000.0}})),
            Some(("serve_json".to_owned(), 52_000.0))
        );
        assert_eq!(
            headline(&json!({"benchmark": "federation_json",
                             "healthy": {"deliveries_per_sec": 1_200.0}})),
            Some(("federation_json".to_owned(), 1_200.0))
        );
        assert_eq!(
            headline(&json!({"benchmark": "search_json",
                             "query": {"queries_per_sec": 24_000.0}})),
            Some(("search_json".to_owned(), 24_000.0))
        );
        assert_eq!(headline(&json!({"benchmark": "mystery"})), None);
        assert_eq!(headline(&json!({"speedup": 3.0})), None);
    }

    #[test]
    fn within_tolerance_passes_and_beyond_fails() {
        // 30% tolerance: 7.1 vs baseline 10 passes, 6.9 fails.
        let ok = compare(&reduce_doc(7.1), Some(&reduce_doc(10.0)));
        assert!(!ok.is_regression(), "{}", ok.describe());
        let bad = compare(&reduce_doc(6.9), Some(&reduce_doc(10.0)));
        assert!(bad.is_regression(), "{}", bad.describe());
        assert!(bad.describe().contains("REGRESSED"));
        // Improvements obviously pass.
        assert!(!compare(&reduce_doc(20.0), Some(&reduce_doc(10.0))).is_regression());
    }

    #[test]
    fn missing_or_malformed_baselines_skip_not_fail() {
        let no_baseline = compare(&reduce_doc(5.0), None);
        assert!(!no_baseline.is_regression());
        assert!(no_baseline.describe().contains("SKIPPED"));
        let junk = compare(&reduce_doc(5.0), Some(&json!({"benchmark": "reduce_json"})));
        assert!(!junk.is_regression());
        let unknown = compare(&json!({"benchmark": "mystery"}), Some(&reduce_doc(5.0)));
        assert!(!unknown.is_regression());
    }
}
