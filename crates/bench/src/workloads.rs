//! Reusable benchmark workloads.

use cais_common::{Observable, ObservableKind, Timestamp};
use cais_core::enrich::Enricher;
use cais_core::ioc::{ComposedIoc, EnrichedIoc};
use cais_core::{EvaluationContext, Platform};
use cais_feeds::synth::{SyntheticConfig, SyntheticFeedSet};
use cais_feeds::{FeedRecord, ThreatCategory};
use cais_infra::inventory::{Inventory, NodeType};
use cais_misp::{AttributeCategory, MispAttribute, MispEvent, MispStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fresh platform over the paper's use-case context.
pub fn platform() -> Platform {
    Platform::paper_use_case()
}

/// The paper's Section IV advisory as a feed record.
pub fn struts_advisory(ctx: &EvaluationContext) -> FeedRecord {
    FeedRecord::new(
        Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
        ThreatCategory::VulnerabilityExploitation,
        "nvd-feed",
        ctx.now.add_days(-100),
    )
    .with_cve("CVE-2017-9805")
    .with_description("remote code execution in apache struts")
}

/// A flattened synthetic record stream with the given size and
/// duplication characteristics, stamped relative to `now`.
pub fn record_stream(
    seed: u64,
    feeds: usize,
    records_per_feed: usize,
    duplicate_rate: f64,
    overlap_rate: f64,
    now: Timestamp,
) -> Vec<FeedRecord> {
    SyntheticFeedSet::generate(&SyntheticConfig {
        seed,
        feeds,
        records_per_feed,
        duplicate_rate,
        overlap_rate,
        base_time: now.add_days(-10),
        ..SyntheticConfig::default()
    })
    .all_records()
}

/// A stream of `count` CVE advisories, a `relevant_fraction` of which
/// concern inventory software (drawn from the context's CVE database).
pub fn advisory_stream(
    seed: u64,
    count: usize,
    relevant_fraction: f64,
    ctx: &EvaluationContext,
) -> Vec<FeedRecord> {
    cais_core::baseline::labeled_population(seed, count, relevant_fraction, ctx)
        .into_iter()
        .flat_map(|sample| sample.cioc.records)
        .collect()
}

/// Software names installed across the synthetic fleet — the same
/// pool the reduce workload's descriptions mention, so matches really
/// happen. Mixed single- and multi-word names exercise both subset
/// directions of the word matcher.
const PRODUCT_POOL: &[&str] = &[
    "apache struts",
    "apache",
    "apache storm",
    "apache zookeeper",
    "apache kafka",
    "gitlab",
    "gitlab runner",
    "owncloud",
    "nextcloud",
    "snort",
    "suricata",
    "ossec",
    "wazuh agent",
    "nginx",
    "haproxy",
    "postgresql",
    "mysql server",
    "redis",
    "memcached",
    "rabbitmq",
    "elasticsearch",
    "kibana",
    "logstash",
    "grafana",
    "prometheus node exporter",
    "docker engine",
    "kubernetes kubelet",
    "openssh server",
    "openssl",
    "php",
    "python runtime",
    "nodejs",
    "tomcat",
    "jenkins",
    "wordpress",
    "drupal core",
    "samba",
    "bind dns",
    "postfix",
    "squid proxy",
];

const OS_POOL: &[&str] = &["ubuntu", "debian", "centos", "alpine", "freebsd"];

/// A synthetic fleet of `nodes` machines with 4–9 applications each,
/// drawn from [`PRODUCT_POOL`], plus the paper's `linux` common
/// keyword. Seeded and deterministic.
pub fn synthetic_inventory(seed: u64, nodes: usize) -> Inventory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = Inventory::builder();
    for i in 0..nodes {
        let os = OS_POOL[rng.gen_range(0..OS_POOL.len())];
        let node_type = if i % 4 == 0 {
            NodeType::Workstation
        } else {
            NodeType::Server
        };
        let mut node = builder.node(format!("fleet-{i}"), node_type, os);
        node.ip(format!("10.{}.{}.{}", i / 65536, (i / 256) % 256, i % 256));
        node.network("LAN");
        let app_count = rng.gen_range(4..10);
        for _ in 0..app_count {
            node.application(PRODUCT_POOL[rng.gen_range(0..PRODUCT_POOL.len())]);
        }
    }
    builder.common_keyword("linux");
    builder.build()
}

/// `count` enriched vulnerability IoCs whose descriptions mention pool
/// products (with realistic repetition — feeds re-report the same
/// products constantly), a slice of common-keyword advisories and a
/// slice that matches nothing. CVE ids cycle the context's database so
/// an attached-database reducer exercises its record memo.
pub fn reduce_eiocs(seed: u64, count: usize, ctx: &EvaluationContext) -> Vec<EnrichedIoc> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cve_ids: Vec<String> = ctx.cve_db.iter().map(|r| r.id.to_string()).collect();
    let enricher = Enricher::new(ctx.clone());
    let templates = [
        "remote code execution in {}",
        "critical deserialization flaw reported in {}",
        "active exploitation of {} instances observed",
        "{} authentication bypass under attack",
    ];
    (0..count)
        .map(|i| {
            let roll = rng.gen_range(0u32..100);
            let description = if roll < 80 {
                let product = PRODUCT_POOL[rng.gen_range(0..PRODUCT_POOL.len())];
                let template = templates[rng.gen_range(0..templates.len())];
                template.replace("{}", product)
            } else if roll < 85 {
                "kernel privilege escalation affecting linux distributions".to_owned()
            } else {
                format!("advisory {i} for an appliance nobody in the fleet runs")
            };
            let cve = &cve_ids[rng.gen_range(0..cve_ids.len())];
            let record = FeedRecord::new(
                Observable::new(ObservableKind::Cve, cve),
                ThreatCategory::VulnerabilityExploitation,
                "nvd-feed",
                ctx.now.add_days(-rng.gen_range(1i64..120)),
            )
            .with_cve(cve)
            .with_description(description);
            let cioc = ComposedIoc::new(
                ThreatCategory::VulnerabilityExploitation,
                vec![record],
                ctx.now,
            );
            enricher.enrich(cioc)
        })
        .collect()
}

/// `count` published MISP events for the share-path benchmarks: 3–6
/// unique network attributes each plus a CVE reference, seeded so the
/// population *shape* is reproducible (UUIDs are per-run).
pub fn synthetic_events(seed: u64, count: usize) -> Vec<MispEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let mut event = MispEvent::new(format!("advisory {i}"));
            let attributes = rng.gen_range(3..7);
            for a in 0..attributes {
                event.add_attribute(MispAttribute::new(
                    "domain",
                    AttributeCategory::NetworkActivity,
                    format!("host-{i}-{a}.example"),
                ));
            }
            event.add_attribute(MispAttribute::new(
                "vulnerability",
                AttributeCategory::ExternalAnalysis,
                format!("CVE-2017-{}", 9000 + (i % 1000)),
            ));
            event.published = true;
            event
        })
        .collect()
}

/// `count` published events for the decay benchmarks: each carries the
/// `cais-conf` confidence taxonomy (reliability/freshness/corroboration
/// machine tags) plus one network attribute, with `date` stamped a
/// seeded 0–25 days before `now` so the population spans the whole
/// decay curve. Fully deterministic apart from per-run UUIDs.
pub fn decay_events(seed: u64, count: usize, now: Timestamp) -> Vec<MispEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let mut event = MispEvent::new(format!("advisory {i}"));
            event.date = now.add_days(-rng.gen_range(0i64..26));
            event.add_attribute(MispAttribute::new(
                "domain",
                AttributeCategory::NetworkActivity,
                format!("host-{i}.example"),
            ));
            for predicate in ["reliability", "freshness", "corroboration"] {
                event.add_tag(cais_misp::Tag::machine(
                    "cais-conf",
                    predicate,
                    &rng.gen_range(1u8..6).to_string(),
                ));
            }
            event.published = true;
            event
        })
        .collect()
}

/// Attribute types the search workload draws from, paired with the
/// category they are filed under — the distribution queries
/// discriminate on.
const SEARCH_ATTRIBUTE_POOL: &[(&str, AttributeCategory)] = &[
    ("domain", AttributeCategory::NetworkActivity),
    ("ip-dst", AttributeCategory::NetworkActivity),
    ("url", AttributeCategory::NetworkActivity),
    ("sha256", AttributeCategory::PayloadDelivery),
    ("email-src", AttributeCategory::PayloadDelivery),
    ("vulnerability", AttributeCategory::ExternalAnalysis),
];

const SEARCH_ORG_POOL: &[&str] = &["CIRCL", "ACME-CSIRT", "fleet-soc", "partner-isac"];

/// `count` events for the search benchmarks, 5 attributes each: typed
/// attributes drawn from a 6-type pool, an org from a 4-org pool, a
/// TLP tag plus the `cais-conf` confidence taxonomy, `date` spread
/// over the 25 days before `now`, and ~10% left unpublished — so
/// every query-language axis (type, category, tag, org, value, date,
/// score, published) is selective over the population. Deterministic
/// apart from per-run UUIDs.
pub fn search_events(seed: u64, count: usize, now: Timestamp) -> Vec<MispEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tlp = [
        cais_misp::Tag::tlp_white(),
        cais_misp::Tag::tlp_green(),
        cais_misp::Tag::tlp_amber(),
        cais_misp::Tag::tlp_red(),
    ];
    (0..count)
        .map(|i| {
            let mut event = MispEvent::new(format!("advisory {i}"));
            event.org = SEARCH_ORG_POOL[rng.gen_range(0..SEARCH_ORG_POOL.len())].to_owned();
            event.date = now.add_days(-rng.gen_range(0i64..26));
            for a in 0..5 {
                let (attr_type, category) =
                    SEARCH_ATTRIBUTE_POOL[rng.gen_range(0..SEARCH_ATTRIBUTE_POOL.len())];
                let value = match attr_type {
                    "ip-dst" => format!("10.{}.{}.{}", i % 200, (i / 200) % 200, a),
                    "url" => format!("https://host-{i}.example/path-{a}"),
                    // The leading letter keeps all-digit hex (which the
                    // observable detector rejects) out of the pool.
                    "sha256" => format!("a{:063x}", (i as u128) << 8 | a as u128),
                    "email-src" => format!("actor-{i}@mail-{a}.example"),
                    "vulnerability" => format!("CVE-2017-{}", 9000 + (i % 1000)),
                    _ => format!("host-{i}-{a}.example"),
                };
                event.add_attribute(MispAttribute::new(attr_type, category, value));
            }
            event.add_tag(tlp[rng.gen_range(0..tlp.len())].clone());
            if rng.gen_range(0u32..2) == 0 {
                event.add_tag(cais_misp::Tag::machine(
                    "cais",
                    "threat-score",
                    &format!("{:.2}", rng.gen_range(0.0f64..5.0)),
                ));
            }
            for predicate in ["reliability", "freshness", "corroboration"] {
                event.add_tag(cais_misp::Tag::machine(
                    "cais-conf",
                    predicate,
                    &rng.gen_range(1u8..6).to_string(),
                ));
            }
            event.published = rng.gen_range(0u32..10) != 0;
            event
        })
        .collect()
}

/// Mutates roughly `fraction` of the store's events (every k-th id in
/// id order) by rewriting their `info`, returning how many changed.
/// `round` disambiguates repeated churn passes so every pass really
/// bumps the touched events' versions.
pub fn churn_events(store: &MispStore, fraction: f64, round: u64) -> usize {
    if fraction <= 0.0 {
        return 0;
    }
    let step = ((1.0 / fraction).round() as usize).max(1);
    let mut changed = 0;
    for (i, versioned) in store.snapshot().iter().enumerate() {
        if i % step != 0 {
            continue;
        }
        let id = versioned.event.id;
        if store
            .update(id, |event| {
                event.info = format!("advisory {id} (churn {round})");
            })
            .is_ok()
        {
            changed += 1;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_nonempty_and_seeded() {
        let p = platform();
        let a = record_stream(1, 4, 50, 0.2, 0.2, p.context().now);
        let b = record_stream(1, 4, 50, 0.2, 0.2, p.context().now);
        assert_eq!(a.len(), 200);
        assert_eq!(a, b);
        let advisories = advisory_stream(1, 50, 0.5, p.context());
        assert!(!advisories.is_empty());
    }

    #[test]
    fn synthetic_inventory_is_seeded_and_normalized() {
        let a = synthetic_inventory(7, 100);
        let b = synthetic_inventory(7, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.nodes().all(|n| n
            .applications
            .iter()
            .all(|app| *app == app.to_ascii_lowercase())));
        assert!(a.match_application("linux").is_common_keyword());
    }

    #[test]
    fn synthetic_events_and_churn_are_seeded() {
        let a = synthetic_events(7, 50);
        let b = synthetic_events(7, 50);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.info, y.info);
            assert_eq!(x.attributes.len(), y.attributes.len());
            assert!(x.published);
        }

        let store = MispStore::new();
        for event in a {
            store.insert(event).unwrap();
        }
        let generation = store.generation();
        let changed = churn_events(&store, 0.1, 1);
        assert_eq!(changed, 5);
        assert_eq!(store.generation(), generation + 5);
        // A second round touches the same events again.
        assert_eq!(churn_events(&store, 0.1, 2), 5);
        assert_eq!(churn_events(&store, 0.0, 3), 0);
    }

    #[test]
    fn decay_events_are_tagged_dated_and_seeded() {
        let now = Timestamp::from_unix_millis(50 * cais_common::time::MILLIS_PER_DAY);
        let a = decay_events(7, 40, now);
        let b = decay_events(7, 40, now);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.info, y.info);
            assert_eq!(x.date, y.date);
            assert_eq!(x.tags, y.tags);
            assert!(x.published);
            assert!(
                x.date <= now && now.millis_since(x.date) <= 26 * cais_common::time::MILLIS_PER_DAY
            );
            assert_eq!(
                x.tags
                    .iter()
                    .filter(|t| t.namespace() == Some("cais-conf"))
                    .count(),
                3
            );
        }
    }

    #[test]
    fn search_events_span_every_query_axis() {
        let now = Timestamp::from_unix_millis(50 * cais_common::time::MILLIS_PER_DAY);
        let a = search_events(7, 200, now);
        let b = search_events(7, 200, now);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.info, y.info);
            assert_eq!(x.org, y.org);
            assert_eq!(x.date, y.date);
            assert_eq!(x.tags, y.tags);
            assert_eq!(x.attributes.len(), 5);
        }
        // Both sides of the selective axes are populated.
        assert!(a.iter().any(|e| e.published) && a.iter().any(|e| !e.published));
        assert!(a.iter().any(|e| e.threat_score().is_some()));
        assert!(a.iter().any(|e| e.threat_score().is_none()));
        assert!(a.iter().any(|e| e.org == "CIRCL") && a.iter().any(|e| e.org != "CIRCL"));
        let typed = |t: &str| {
            a.iter()
                .any(|e| e.attributes.iter().any(|attr| attr.attr_type == t))
        };
        for (attr_type, _) in SEARCH_ATTRIBUTE_POOL {
            assert!(typed(attr_type), "no {attr_type} attribute generated");
        }
    }

    #[test]
    fn reduce_eiocs_mix_matching_and_nonmatching() {
        let ctx = EvaluationContext::paper_use_case();
        let eiocs = reduce_eiocs(7, 200, &ctx);
        assert_eq!(eiocs.len(), 200);
        let inventory = std::sync::Arc::new(synthetic_inventory(7, 50));
        let reducer = cais_core::Reducer::new(inventory);
        let matched = eiocs.iter().filter(|e| reducer.reduce(e).is_some()).count();
        // Most descriptions mention fleet software; some match nothing.
        assert!(matched > 100, "only {matched}/200 matched");
        assert!(matched < 200, "all {matched}/200 matched");
    }
}
