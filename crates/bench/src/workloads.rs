//! Reusable benchmark workloads.

use cais_common::{Observable, ObservableKind, Timestamp};
use cais_core::{EvaluationContext, Platform};
use cais_feeds::synth::{SyntheticConfig, SyntheticFeedSet};
use cais_feeds::{FeedRecord, ThreatCategory};

/// A fresh platform over the paper's use-case context.
pub fn platform() -> Platform {
    Platform::paper_use_case()
}

/// The paper's Section IV advisory as a feed record.
pub fn struts_advisory(ctx: &EvaluationContext) -> FeedRecord {
    FeedRecord::new(
        Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
        ThreatCategory::VulnerabilityExploitation,
        "nvd-feed",
        ctx.now.add_days(-100),
    )
    .with_cve("CVE-2017-9805")
    .with_description("remote code execution in apache struts")
}

/// A flattened synthetic record stream with the given size and
/// duplication characteristics, stamped relative to `now`.
pub fn record_stream(
    seed: u64,
    feeds: usize,
    records_per_feed: usize,
    duplicate_rate: f64,
    overlap_rate: f64,
    now: Timestamp,
) -> Vec<FeedRecord> {
    SyntheticFeedSet::generate(&SyntheticConfig {
        seed,
        feeds,
        records_per_feed,
        duplicate_rate,
        overlap_rate,
        base_time: now.add_days(-10),
        ..SyntheticConfig::default()
    })
    .all_records()
}

/// A stream of `count` CVE advisories, a `relevant_fraction` of which
/// concern inventory software (drawn from the context's CVE database).
pub fn advisory_stream(
    seed: u64,
    count: usize,
    relevant_fraction: f64,
    ctx: &EvaluationContext,
) -> Vec<FeedRecord> {
    cais_core::baseline::labeled_population(seed, count, relevant_fraction, ctx)
        .into_iter()
        .flat_map(|sample| sample.cioc.records)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_nonempty_and_seeded() {
        let p = platform();
        let a = record_stream(1, 4, 50, 0.2, 0.2, p.context().now);
        let b = record_stream(1, 4, 50, 0.2, 0.2, p.context().now);
        assert_eq!(a.len(), 200);
        assert_eq!(a, b);
        let advisories = advisory_stream(1, 50, 0.5, p.context());
        assert!(!advisories.is_empty());
    }
}
