//! Machine-readable federation benchmark: a mesh of real framed-TCP
//! federation peers driven to the policy-filtered fixpoint twice over
//! the same deterministic event population — once fault-free (the
//! sync-throughput headline: receiver-side event deliveries per
//! second), once under seeded wire chaos (20% of every edge's pushes
//! fail, rotating through the transient fault alphabet). The chaos
//! run must still converge, byte-match the fault-free fixpoint peer by
//! peer, and leak nothing — a violation aborts the run, which fails
//! CI. Writes `BENCH_federation.json` (schema in
//! [`cais_bench::report`]), gated by `bench_compare` on the fault-free
//! deliveries/sec headline.
//!
//! ```text
//! cargo run --release -p cais-bench --bin federation_json           # writes BENCH_federation.json
//! cargo run --release -p cais-bench --bin federation_json -- -      # print to stdout instead
//! cargo run --release -p cais-bench --bin federation_json -- 4 16   # peers events (CI smoke)
//! ```

use std::time::Instant;

use cais_bench::report::{federation_bench_doc, FederationBenchMeasurement};
use cais_common::resilience::{FaultKind, FaultPlan};
use cais_common::{Timestamp, Uuid};
use cais_federation::{edge_site, FederationHarness, Tenant, Topology};
use cais_misp::event::Distribution;
use cais_misp::{AttributeCategory, MispAttribute, MispEvent};

const MAX_ROUNDS: u32 = 256;
const FAULT_RATE: f64 = 0.2;
const CHAOS_SEED: u64 = 42;

/// The transient wire faults the chaos run rotates across edges.
const WIRE_KINDS: [FaultKind; 5] = [
    FaultKind::Error,
    FaultKind::Garbage,
    FaultKind::Truncate,
    FaultKind::Replay,
    FaultKind::AckLost,
];

fn tenants(n: usize) -> Vec<Tenant> {
    (0..n)
        .map(|i| Tenant::new(format!("org-{i}"), Vec::<String>::new()))
        .collect()
}

/// Deterministic content (UUID and date derive from the label) so both
/// runs seed byte-identical populations and the fixpoints can be
/// byte-compared.
fn broadcast_event(label: &str) -> MispEvent {
    let mut event = MispEvent::new(format!("intel {label}"));
    event.uuid = Uuid::new_v5(label);
    event.date = Timestamp::from_ymd_hms(2026, 8, 9, 0, 0, 0);
    event.distribution = Distribution::AllCommunities;
    let mut attribute = MispAttribute::new(
        "domain",
        AttributeCategory::NetworkActivity,
        format!("{label}.example"),
    );
    attribute.uuid = Uuid::new_v5(&format!("attr:{label}"));
    event.add_attribute(attribute);
    event
}

/// Builds a TCP mesh, seeds `events` round-robin and runs it to
/// quiescence; returns the harness, its convergence report and the
/// wall time of the sync phase.
fn run(
    peers: usize,
    events: usize,
    faults: FaultPlan,
) -> (FederationHarness, cais_federation::ConvergenceReport, u64) {
    let mut harness =
        FederationHarness::tcp(Topology::Mesh, tenants(peers), faults).expect("bind peers");
    for e in 0..events {
        harness
            .seed_event(e % peers, broadcast_event(&format!("bench-ev-{e}")))
            .expect("seed event");
    }
    let started = Instant::now();
    let report = harness.run_until_quiescent(MAX_ROUNDS);
    let nanos = started.elapsed().as_nanos() as u64;
    (harness, report, nanos)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let to_stdout = args.first().map(String::as_str) == Some("-");
    let numeric: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let peers = numeric.first().copied().unwrap_or(8).max(2);
    let events = numeric.get(1).copied().unwrap_or(64).max(1);

    eprintln!("federation_json: fault-free mesh of {peers} TCP peers, {events} events…");
    let (mut healthy, healthy_report, healthy_nanos) = run(peers, events, FaultPlan::healthy());
    assert!(
        healthy_report.converged,
        "fault-free mesh failed to converge: {healthy_report:?}"
    );
    assert!(healthy.views_identical(), "fault-free views diverged");

    eprintln!(
        "federation_json: chaos mesh (seed {CHAOS_SEED}, {:.0}% of every edge faulted)…",
        FAULT_RATE * 100.0
    );
    let mut faults = FaultPlan::new(CHAOS_SEED);
    for (i, (src, dst)) in Topology::Mesh.edges(peers).into_iter().enumerate() {
        let site = edge_site(Topology::Mesh, src, dst);
        faults = faults.rate(&site, FAULT_RATE, WIRE_KINDS[i % WIRE_KINDS.len()]);
    }
    let (mut chaos, chaos_report, chaos_nanos) = run(peers, events, faults);

    let fixpoints_match = chaos.canonical_views() == healthy.canonical_views();
    let leaks = healthy.leaks().len() + chaos.leaks().len();

    let m = FederationBenchMeasurement {
        peers,
        events,
        healthy_rounds: healthy_report.rounds_run,
        healthy_nanos,
        healthy_frames: healthy_report.rounds.iter().map(|r| r.frames_sent).sum(),
        delivered: healthy_report.total_inserted(),
        chaos_rounds: chaos_report.rounds_run,
        chaos_nanos,
        chaos_failures: chaos_report.total_failures(),
        chaos_retries: chaos_report.rounds.iter().map(|r| r.retries).sum(),
        chaos_converged: chaos_report.converged,
        fixpoints_match,
        leaks,
    };
    eprintln!(
        "federation_json: healthy {} rounds / {:.1}ms ({:.0} deliveries/s); \
         chaos {} rounds, {} failures, {} retries",
        m.healthy_rounds,
        m.healthy_nanos as f64 / 1e6,
        m.deliveries_per_sec(),
        m.chaos_rounds,
        m.chaos_failures,
        m.chaos_retries,
    );
    assert!(
        m.chaos_converged,
        "chaos mesh failed to converge in {MAX_ROUNDS} rounds: {chaos_report:?}"
    );
    assert!(
        m.fixpoints_match,
        "chaos fixpoint diverged from the fault-free fixpoint"
    );
    assert_eq!(leaks, 0, "cross-tenant leaks: {leaks}");
    let text = serde_json::to_string_pretty(&federation_bench_doc(&m)).expect("doc serializes");

    healthy.shutdown();
    chaos.shutdown();

    if to_stdout {
        println!("{text}");
    } else {
        let path = "BENCH_federation.json";
        std::fs::write(path, format!("{text}\n")).expect("write BENCH_federation.json");
        eprintln!("wrote {path}");
    }
}
