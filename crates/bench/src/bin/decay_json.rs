//! Machine-readable decay benchmark: a 1M-event store rescored through
//! the [`DecayEngine`] incremental path (version-gated base reuse)
//! against the from-scratch rescore that re-derives every taxonomy
//! base, with 1% churn and a seeded sighting stream between passes.
//! Exact score equivalence of the two paths is asserted — a mismatch
//! aborts the run, which fails CI — as is the ≥5× incremental speedup
//! bar. Writes `BENCH_decay.json` for trend tracking.
//!
//! ```text
//! cargo run --release -p cais-bench --bin decay_json             # writes BENCH_decay.json
//! cargo run --release -p cais-bench --bin decay_json -- -        # print to stdout instead
//! cargo run --release -p cais-bench --bin decay_json -- 10000 3  # events passes (smoke sizing)
//! ```

use std::sync::Arc;
use std::time::Instant;

use cais_bench::report::{decay_bench_doc, DecayBenchMeasurement};
use cais_bench::workloads;
use cais_common::resilience::VirtualClock;
use cais_common::time::MILLIS_PER_DAY;
use cais_common::Timestamp;
use cais_decay::{BaseScorer, DecayEngine, DecayModel};
use cais_misp::MispStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CHURN_FRACTION: f64 = 0.01;
const SIGHTING_FRACTION: f64 = 0.005;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let to_stdout = args.first().map(String::as_str) == Some("-");
    let numeric: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let events = numeric.first().copied().unwrap_or(1_000_000);
    let passes = numeric.get(1).copied().unwrap_or(3).max(2);

    // A virtual "now" 50 days into the epoch; event dates trail it by
    // 0–25 days, so the population spans the whole decay curve.
    let now = Timestamp::from_unix_millis(50 * MILLIS_PER_DAY);
    let clock = VirtualClock::starting_at(now);
    let engine = DecayEngine::new(
        DecayModel::default(),
        BaseScorer::cais_default(),
        Arc::new(clock.clone()),
    );

    let store = MispStore::new();
    let mut uuids = Vec::with_capacity(events);
    for event in workloads::decay_events(42, events, now) {
        uuids.push(event.uuid);
        store.insert(event).expect("insert");
    }

    // Seeded sighting stream: a fraction of the population was re-seen
    // in the last ten days, resetting those decay clocks.
    let mut rng = StdRng::seed_from_u64(7);
    let sightings = ((events as f64 * SIGHTING_FRACTION) as usize).max(1);
    for _ in 0..sightings {
        let uuid = uuids[rng.gen_range(0..uuids.len())];
        engine.record_sighting(uuid, now.add_days(-rng.gen_range(0i64..10)));
    }

    // From-scratch baseline: every taxonomy base re-derived from tags.
    let started = Instant::now();
    let full = engine.score_from_scratch(&store);
    let full_nanos = started.elapsed().as_nanos() as u64;

    // Cold incremental pass: first walk, every base derived once.
    let started = Instant::now();
    let (cold_scores, cold_summary) = engine.rescore(&store);
    let cold_nanos = started.elapsed().as_nanos() as u64;
    assert_eq!(cold_summary.rebased, events, "cold pass derives every base");
    assert_eq!(cold_scores, full, "cold incremental diverges from full");

    // Churned incremental passes: 1% version churn before each, best
    // observed time. This is the steady-state rescore the sweep loop
    // pays.
    let mut incremental_nanos = u64::MAX;
    let mut churned = 0;
    let mut last_summary = cold_summary;
    let mut last_scores = cold_scores;
    for round in 1..passes {
        churned = workloads::churn_events(&store, CHURN_FRACTION, round as u64);
        clock.advance_days(1);
        let started = Instant::now();
        let (scores, summary) = engine.rescore(&store);
        incremental_nanos = incremental_nanos.min(started.elapsed().as_nanos() as u64);
        last_summary = summary;
        last_scores = scores;
    }
    assert_eq!(
        last_summary.rebased, churned,
        "incremental pass must re-derive exactly the churned bases"
    );

    // The speedup claim is meaningless if the scores differ.
    let scratch = engine.score_from_scratch(&store);
    let equivalent = last_scores == scratch;
    assert!(
        equivalent,
        "incremental rescore diverges from the from-scratch oracle"
    );

    let m = DecayBenchMeasurement {
        events,
        churned,
        sightings,
        full_nanos,
        cold_nanos,
        incremental_nanos,
        rebased: last_summary.rebased,
        reused: last_summary.reused,
        expired: last_summary.expired,
        equivalent,
    };
    eprintln!(
        "decay_json: {events} events, {churned} churned, {sightings} sightings -> \
         full {:.1}ms, cold {:.1}ms, incremental {:.1}ms, speedup {:.1}x \
         ({:.0} events/s, {} expired)",
        m.full_nanos as f64 / 1e6,
        m.cold_nanos as f64 / 1e6,
        m.incremental_nanos as f64 / 1e6,
        m.speedup(),
        m.incremental_events_per_sec(),
        m.expired,
    );
    assert!(
        m.speedup() >= 5.0,
        "incremental rescore speedup {:.1}x is below the 5x bar",
        m.speedup()
    );
    let text = serde_json::to_string_pretty(&decay_bench_doc(&m)).expect("doc serializes");

    if to_stdout {
        println!("{text}");
    } else {
        let path = "BENCH_decay.json";
        std::fs::write(path, format!("{text}\n")).expect("write BENCH_decay.json");
        eprintln!("wrote {path}");
    }
}
