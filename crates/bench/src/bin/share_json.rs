//! Machine-readable share-path benchmark: a 10k-event store pulled
//! three times through the [`ShareExporter`] cache with 1% churn
//! between the warm and final pulls, timed against the naive
//! re-serialize-everything baseline. Byte equivalence of the cached
//! and naive outputs (and of serial vs parallel STIX bundle assembly)
//! is asserted — a mismatch aborts the run, which fails CI. Writes
//! `BENCH_share.json` for trend tracking.
//!
//! ```text
//! cargo run --release -p cais-bench --bin share_json            # writes BENCH_share.json
//! cargo run --release -p cais-bench --bin share_json -- -       # print to stdout instead
//! cargo run --release -p cais-bench --bin share_json -- 1000 3  # events pulls (smoke sizing)
//! ```

use std::time::Instant;

use cais_bench::report::{share_bench_doc, ShareBenchMeasurement};
use cais_bench::workloads;
use cais_misp::export::ExportRegistry;
use cais_misp::{MispStore, ShareExporter};

const FORMAT: &str = "misp-json";
const CHURN_FRACTION: f64 = 0.01;

/// The uncached baseline: every event re-serialized on every pull,
/// joined exactly like [`ShareExporter::pull`] joins its documents.
fn naive_pull(store: &MispStore, registry: &ExportRegistry) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, versioned) in store.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(b'\n');
        }
        let document = registry
            .export(FORMAT, &versioned.event)
            .expect("export succeeds")
            .expect("format exists");
        out.extend_from_slice(document.as_bytes());
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let to_stdout = args.first().map(String::as_str) == Some("-");
    let numeric: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let events = numeric.first().copied().unwrap_or(10_000);
    let pulls = numeric.get(1).copied().unwrap_or(3).max(2);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let store = MispStore::new();
    for event in workloads::synthetic_events(42, events) {
        store.insert(event).expect("insert");
    }
    let share = ShareExporter::default();

    // Naive baseline first: one full re-serialization pass.
    let started = Instant::now();
    let naive = naive_pull(&store, share.registry());
    let naive_nanos = started.elapsed().as_nanos() as u64;

    // Cold pull: every event is a cache miss.
    let started = Instant::now();
    let cold = share
        .pull(&store, FORMAT, workers)
        .expect("pull succeeds")
        .expect("format exists");
    let cold_nanos = started.elapsed().as_nanos() as u64;

    // Warm pulls: unchanged store, best observed time.
    let mut warm_nanos = u64::MAX;
    let mut warm = cold.clone();
    for _ in 1..pulls {
        let started = Instant::now();
        warm = share
            .pull(&store, FORMAT, workers)
            .expect("pull succeeds")
            .expect("format exists");
        warm_nanos = warm_nanos.min(started.elapsed().as_nanos() as u64);
    }

    // The speedup claim is meaningless if the bytes differ.
    let equivalent = *cold == naive[..] && *warm == naive[..];
    assert!(
        equivalent,
        "cached pull bytes diverge from the naive export"
    );

    // Churn 1% of the store; the next pull re-serializes only those.
    let churned = workloads::churn_events(&store, CHURN_FRACTION, 1);
    let started = Instant::now();
    let after_churn = share
        .pull(&store, FORMAT, workers)
        .expect("pull succeeds")
        .expect("format exists");
    let churn_nanos = started.elapsed().as_nanos() as u64;
    assert_eq!(
        *after_churn,
        naive_pull(&store, share.registry())[..],
        "post-churn cached pull diverges from the naive export"
    );

    // Serial vs parallel STIX assembly on fresh exporters (no memo).
    let serial = ShareExporter::default()
        .stix_bundle(&store, 1)
        .expect("serial bundle");
    let parallel = ShareExporter::default()
        .stix_bundle(&store, workers.max(2))
        .expect("parallel bundle");
    let stix_parallel_matches = serial == parallel;
    assert!(
        stix_parallel_matches,
        "serial and parallel STIX assembly produced different bytes"
    );

    let m = ShareBenchMeasurement {
        events,
        pulls,
        churned,
        naive_nanos,
        cold_nanos,
        warm_nanos,
        churn_nanos,
        pull_bytes: naive.len(),
        equivalent,
        stix_parallel_matches,
        stats: share.stats(),
    };
    assert!(
        m.warm_speedup() >= 5.0,
        "warm pull speedup {:.1}x is below the 5x bar",
        m.warm_speedup()
    );
    let text = serde_json::to_string_pretty(&share_bench_doc(&m)).expect("doc serializes");

    if to_stdout {
        println!("{text}");
    } else {
        let path = "BENCH_share.json";
        std::fs::write(path, format!("{text}\n")).expect("write BENCH_share.json");
        eprintln!(
            "wrote {path}: {events} events, {pulls} pulls, {churned} churned -> \
             warm speedup {:.1}x, churn speedup {:.1}x ({} bytes per pull)",
            m.warm_speedup(),
            m.churn_speedup(),
            m.pull_bytes,
        );
    }
}
