//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p cais-bench --bin report            # everything
//! cargo run -p cais-bench --bin report -- table5  # one section
//! ```

use cais_bench::report;

fn main() {
    let sections: Vec<String> = std::env::args().skip(1).collect();
    if sections.is_empty() {
        print!("{}", report::full_report());
        return;
    }
    for section in sections {
        let text = match section.trim_start_matches("--") {
            "table1" => report::table1(),
            "table2" => report::table2(),
            "table3" => report::table3(),
            "table4" => report::table4(),
            "table5" => report::table5(),
            "fig1" => report::fig1(),
            "fig2" => report::fig2(),
            "fig3" => report::fig3(),
            "fig4" => report::fig4(),
            "dedup" => report::dedup_sweep(),
            "reduction" => report::reduction_ratio(),
            "baseline" => report::baseline_comparison(),
            "nlp" => report::nlp_triage(),
            "detection" => report::detection_replay(),
            other => {
                eprintln!(
                    "unknown section {other:?}; try table1..table5, fig1..fig4, dedup, reduction, baseline, nlp, detection"
                );
                std::process::exit(2);
            }
        };
        println!("{text}");
    }
}
