//! Machine-readable tracing-overhead benchmark: runs the same seeded
//! 50k-record ingest workload with the causal tracer disabled, fully
//! enabled, and 1-in-64 sampled, and writes `BENCH_trace.json`.
//!
//! The run fails (non-zero exit) if full tracing costs 5% or more over
//! the disabled baseline, or if sampling is slower than full tracing —
//! the observability layer must stay effectively free.
//!
//! ```text
//! cargo run --release -p cais-bench --bin trace_json      # writes BENCH_trace.json
//! cargo run --release -p cais-bench --bin trace_json -- - # print to stdout instead
//! ```

use std::time::Instant;

use cais_bench::report::{trace_bench_doc, TraceBenchMeasurement};
use cais_bench::workloads;
use cais_feeds::FeedRecord;

const ROUNDS: usize = 25;
const FEEDS: usize = 8;
const RECORDS_PER_FEED: usize = 250;
const WORKERS: usize = 4;
const REPS: usize = 5;
const SAMPLE_EVERY: u64 = 64;

/// How the tracer is configured for one timed pass.
#[derive(Clone, Copy)]
enum Mode {
    Disabled,
    Traced,
    Sampled,
}

/// Runs one full pass — `ROUNDS` ingestion rounds on a fresh platform —
/// and returns (wall nanos, spans buffered at the end).
fn run_pass(rounds: &[Vec<FeedRecord>], mode: Mode) -> (u64, usize) {
    let mut platform = workloads::platform();
    match mode {
        Mode::Disabled => platform.tracer().set_enabled(false),
        Mode::Traced => {}
        Mode::Sampled => platform.tracer().set_sample_every(SAMPLE_EVERY),
    }
    // Clone outside the timed region: the allocation cost of handing
    // each round its records is workload setup, not tracing overhead.
    let batches: Vec<Vec<FeedRecord>> = rounds.to_vec();
    let started = Instant::now();
    for records in batches {
        platform
            .ingest_feed_records_parallel(records, WORKERS)
            .expect("synthetic ingestion cannot fail");
    }
    let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (nanos, platform.tracer().len())
}

fn main() {
    let now = workloads::platform().context().now;
    // Distinct seeds per round keep later rounds from degenerating into
    // pure dedup hits: every round does real pipeline work.
    let rounds: Vec<Vec<FeedRecord>> = (0..ROUNDS)
        .map(|round| {
            workloads::record_stream(
                42 * 1_000 + round as u64,
                FEEDS,
                RECORDS_PER_FEED,
                0.25,
                0.2,
                now,
            )
        })
        .collect();
    let records: usize = rounds.iter().map(Vec::len).sum();

    // One untimed warm-up pass, then interleaved best-of-REPS: running
    // the three modes round-robin instead of back-to-back keeps cache
    // and allocator warm-up from being billed to whichever mode runs
    // first.
    run_pass(&rounds, Mode::Disabled);
    let mut baseline_nanos = u64::MAX;
    let mut traced_nanos = u64::MAX;
    let mut sampled_nanos = u64::MAX;
    let mut spans_recorded = 0;
    let mut sampled_spans = 0;
    for _ in 0..REPS {
        baseline_nanos = baseline_nanos.min(run_pass(&rounds, Mode::Disabled).0);
        let (nanos, spans) = run_pass(&rounds, Mode::Traced);
        traced_nanos = traced_nanos.min(nanos);
        spans_recorded = spans;
        let (nanos, spans) = run_pass(&rounds, Mode::Sampled);
        sampled_nanos = sampled_nanos.min(nanos);
        sampled_spans = spans;
    }

    let measurement = TraceBenchMeasurement {
        records,
        rounds: ROUNDS,
        reps: REPS,
        workers: WORKERS,
        baseline_nanos,
        traced_nanos,
        sampled_nanos,
        sample_every: SAMPLE_EVERY,
        spans_recorded,
    };
    let doc = trace_bench_doc(&measurement);
    let text = serde_json::to_string_pretty(&doc).expect("report serializes");

    let to_stdout = std::env::args().nth(1).as_deref() == Some("-");
    if to_stdout {
        println!("{text}");
    } else {
        let path = "BENCH_trace.json";
        std::fs::write(path, format!("{text}\n")).expect("write BENCH_trace.json");
        eprintln!(
            "wrote {path}: {} records, tracing overhead {:+.2}% (sampled {:+.2}%), {} spans buffered",
            records,
            measurement.traced_overhead_pct(),
            measurement.sampled_overhead_pct(),
            spans_recorded,
        );
    }

    assert!(
        measurement.traced_overhead_pct() < 5.0,
        "full tracing costs {:.2}% over the untraced baseline (bar: <5%)",
        measurement.traced_overhead_pct()
    );
    // Sampling is cheaper by construction — it records strictly fewer
    // spans — and its wall time must agree within measurement noise.
    assert!(
        sampled_spans < spans_recorded,
        "1-in-{SAMPLE_EVERY} sampling recorded {sampled_spans} spans, full tracing {spans_recorded}"
    );
    assert!(
        sampled_nanos as f64 <= traced_nanos as f64 * 1.10,
        "1-in-{SAMPLE_EVERY} sampling ({sampled_nanos} ns) runs >10% slower than full tracing ({traced_nanos} ns)"
    );
}
