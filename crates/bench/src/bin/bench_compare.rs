//! CI benchmark gate: compares this run's `BENCH_*.json` files against
//! a downloaded baseline set and exits non-zero when any headline
//! metric regressed past the tolerance in
//! [`cais_bench::compare::REGRESSION_TOLERANCE`].
//!
//! ```text
//! cargo run --release -p cais-bench --bin bench_compare                    # baseline in ./bench-baseline
//! cargo run --release -p cais-bench --bin bench_compare -- path/to/base    # explicit baseline dir
//! cargo run --release -p cais-bench --bin bench_compare -- base current    # explicit both dirs
//! ```
//!
//! A missing or empty baseline directory is not a failure — the first
//! run on a branch has nothing to compare against; the gate prints a
//! note and passes.

use std::path::Path;
use std::process::ExitCode;

use cais_bench::compare::{compare, Comparison};
use serde_json::Value;

fn load_doc(path: &Path) -> Option<Value> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn bench_files(dir: &Path) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    names.sort();
    names
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_dir = Path::new(args.first().map(String::as_str).unwrap_or("bench-baseline"));
    let current_dir_owned = args.get(1).cloned().unwrap_or_else(|| ".".to_owned());
    let current_dir = Path::new(&current_dir_owned);

    let current_files = bench_files(current_dir);
    if current_files.is_empty() {
        eprintln!(
            "bench_compare: no BENCH_*.json in {} — nothing to gate",
            current_dir.display()
        );
        return ExitCode::SUCCESS;
    }
    if bench_files(baseline_dir).is_empty() {
        eprintln!(
            "bench_compare: no baseline BENCH_*.json in {} — first run, gate passes",
            baseline_dir.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut regressions = 0;
    for name in &current_files {
        let Some(current) = load_doc(&current_dir.join(name)) else {
            eprintln!("SKIPPED  {name}: current file is not valid JSON");
            continue;
        };
        let baseline = load_doc(&baseline_dir.join(name));
        let outcome = compare(&current, baseline.as_ref());
        eprintln!("{}", outcome.describe());
        if matches!(outcome, Comparison::Regressed { .. }) {
            regressions += 1;
        }
    }

    if regressions > 0 {
        eprintln!("bench_compare: {regressions} benchmark(s) regressed past tolerance");
        ExitCode::FAILURE
    } else {
        eprintln!("bench_compare: all headline metrics within tolerance");
        ExitCode::SUCCESS
    }
}
