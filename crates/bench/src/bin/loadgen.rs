//! High-concurrency serving benchmark: mixed ingest/pull/scrape
//! traffic against the multiplexed serving core, compared with the
//! thread-per-connection baseline, at four-digit connection counts.
//!
//! The workload is **poll churn** — connect, pull one page, close —
//! the shape real TAXII consumers have (HTTP-style polling), and the
//! one that makes thread-per-connection pay its true cost: one thread
//! spawn and teardown per poll. The servers run in a child process
//! (`--server` mode) so the two sides' file descriptors stay under
//! separate process limits and neither side's allocator interferes
//! with the other's timing. The client is itself multiplexed — one
//! driver thread sweeping nonblocking connection state machines — so
//! the measured ceiling is the server's, not a thread-per-connection
//! client's.
//!
//! Three phases:
//!
//! 1. Poll churn at `connections` concurrent connections against the
//!    thread-per-connection baseline (wall time for `polls` pulls).
//! 2. The same churn against the multiplexed core, with per-poll
//!    request→response latency recorded into the workspace's log₂
//!    histograms (p50/p95/p99 reported).
//! 3. A high-scale mixed run against the core alone: `high_scale`
//!    concurrent connections (target 10k+), 70% pulls / 10% ingests /
//!    10% match-filtered search polls / 10% telemetry scrapes, every
//!    connection expecting exactly one response — the run must
//!    complete with **zero dropped responses**. Search polls' latency
//!    lands in its own histogram and is reported separately.
//!
//! Writes `BENCH_serve.json` (schema in [`cais_bench::report`]), gated
//! by `bench_compare` on the multiplexed polls/sec headline.
//!
//! ```text
//! cargo run --release -p cais-bench --bin loadgen                  # full: 1k compare, 10k mixed
//! cargo run --release -p cais-bench --bin loadgen -- -             # print doc to stdout instead
//! cargo run --release -p cais-bench --bin loadgen -- 128 1500 256  # connections polls high_scale (CI smoke)
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use cais_bench::report::{
    serve_bench_doc, ServeBenchMeasurement, SERVE_BAR_MIN_CONNECTIONS, SERVE_BAR_MIN_SPEEDUP,
};
use cais_common::frame::write_frame;
use cais_common::serve::ServeConfig;
use cais_common::{Timestamp, Uuid};
use cais_taxii::{Collection, TaxiiServer};
use cais_telemetry::{percentiles, Histogram, Registry, RegistryServeMetrics, TelemetryServer};

/// Overall deadline per phase; a stalled phase aborts the run rather
/// than hanging CI.
const PHASE_TIMEOUT: Duration = Duration::from_secs(300);

/// Leftover TIME_WAIT sockets tolerated before a timed phase starts.
/// Churn leaves one client-side TIME_WAIT per poll (60 s lifetime);
/// tens of thousands of them slow every later `connect`'s ephemeral
/// port selection, so each phase would otherwise degrade the next and
/// back-to-back runs would degrade each other.
const TIME_WAIT_BUDGET: u64 = 2_048;

/// Wall time of a fixed CPU-bound loop — logged before each phase so a
/// run's report can be read against the machine's actual speed at that
/// moment (shared boxes throttle and wobble).
fn calibrate() -> Duration {
    let started = Instant::now();
    let mut acc = 0u64;
    for i in 0..20_000_000u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc);
    started.elapsed()
}

/// Current TIME_WAIT socket count, best effort (Linux `/proc` only).
fn time_wait_count() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/net/sockstat").ok()?;
    let tcp = text.lines().find(|l| l.starts_with("TCP:"))?;
    let mut fields = tcp.split_whitespace();
    while let Some(field) = fields.next() {
        if field == "tw" {
            return fields.next()?.parse().ok();
        }
    }
    None
}

/// Parks until leftover TIME_WAIT sockets fall under budget (or 75 s
/// passes — their lifetime is 60 s), so each timed phase starts from
/// comparable kernel socket-table state.
fn drain_time_wait() {
    let deadline = Instant::now() + Duration::from_secs(75);
    while Instant::now() < deadline {
        match time_wait_count() {
            Some(tw) if tw > TIME_WAIT_BUDGET => std::thread::sleep(Duration::from_secs(1)),
            _ => return,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--server") {
        server_mode();
        return;
    }
    let to_stdout = args.first().map(String::as_str) == Some("-");
    let numeric: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let connections = numeric.first().copied().unwrap_or(1_000).max(1);
    let polls = numeric.get(1).copied().unwrap_or(5_000).max(connections);
    let high_scale = numeric.get(2).copied().unwrap_or(10_000).max(1);

    let mut child = ServerChild::spawn();
    let fixture = child.fixture.clone();
    let pull = framed_request(&serde_json::json!({
        "op": "get-objects",
        "collection": fixture.collection,
        "limit": 10,
    }));

    let registry = Registry::new();
    let baseline_hist = registry.histogram("loadgen_baseline_poll_nanos");
    let core_hist = registry.histogram("loadgen_poll_nanos");
    let warmup_hist = registry.histogram("loadgen_warmup_nanos");
    let high_scale_hist = registry.histogram("loadgen_high_scale_nanos");
    let search_hist = registry.histogram("loadgen_search_nanos");

    // Warm both servers (page cache, allocator, listener) outside the
    // timed windows; warmup samples stay out of the reported quantiles.
    churn(fixture.baseline, &pull, 8, 64, &warmup_hist).expect("baseline warmup");
    churn(fixture.core, &pull, 8, 64, &warmup_hist).expect("core warmup");

    // Best-of-N wall time per side: on a shared box a single closed-loop
    // run is at the mercy of scheduler luck, and the least-disturbed rep
    // is the honest estimate of each server's capacity.
    let reps = 3;
    drain_time_wait();
    eprintln!(
        "loadgen: churn {polls} polls @ {connections} conns vs thread-per-connection ({reps} reps)…"
    );
    let mut baseline_nanos = u64::MAX;
    for rep in 0..reps {
        let cal = calibrate();
        let wall = churn(fixture.baseline, &pull, connections, polls, &baseline_hist)
            .expect("baseline churn");
        eprintln!("loadgen:   baseline rep {rep}: {wall:.1?} (cpu probe {cal:.1?})");
        baseline_nanos = baseline_nanos.min(wall.as_nanos() as u64);
    }

    drain_time_wait();
    eprintln!(
        "loadgen: churn {polls} polls @ {connections} conns vs multiplexed core ({reps} reps)…"
    );
    let mut multiplexed_nanos = u64::MAX;
    for rep in 0..reps {
        let cal = calibrate();
        let wall = churn(fixture.core, &pull, connections, polls, &core_hist).expect("core churn");
        eprintln!("loadgen:   multiplexed rep {rep}: {wall:.1?} (cpu probe {cal:.1?})");
        multiplexed_nanos = multiplexed_nanos.min(wall.as_nanos() as u64);
    }

    drain_time_wait();
    eprintln!("loadgen: high-scale mixed run @ {high_scale} concurrent connections…");
    let (responses, search_responses, high_scale_nanos) =
        mixed_high_scale(&fixture, high_scale, &high_scale_hist, &search_hist);

    child.kill();

    let quantiles = percentiles(&registry.snapshot());
    let ranks = &quantiles["loadgen_poll_nanos"];
    // Tiny smoke runs may complete zero search polls; report zeros
    // rather than panicking on the absent histogram.
    let search_rank = |key: &str| {
        quantiles
            .get("loadgen_search_nanos")
            .and_then(|r| r.get(key))
            .copied()
            .unwrap_or(0)
    };
    let measurement = ServeBenchMeasurement {
        connections,
        polls,
        baseline_nanos,
        multiplexed_nanos,
        p50_nanos: ranks["p50"],
        p95_nanos: ranks["p95"],
        p99_nanos: ranks["p99"],
        search_polls: search_responses,
        search_p50_nanos: search_rank("p50"),
        search_p95_nanos: search_rank("p95"),
        search_p99_nanos: search_rank("p99"),
        high_scale_connections: high_scale,
        high_scale_expected: high_scale as u64,
        high_scale_responses: responses,
        high_scale_nanos,
    };
    let doc = serve_bench_doc(&measurement);
    let text = serde_json::to_string_pretty(&doc).expect("serialize");
    if to_stdout {
        println!("{text}");
    } else {
        std::fs::write("BENCH_serve.json", format!("{text}\n")).expect("write BENCH_serve.json");
        eprintln!("loadgen: wrote BENCH_serve.json");
    }
    eprintln!(
        "loadgen: baseline {:.0} polls/s, multiplexed {:.0} polls/s ({:.1}×); \
         high-scale {}/{} responses ({} search polls, p99 {:.1}ms) in {:.1}s",
        measurement.baseline_polls_per_sec(),
        measurement.multiplexed_polls_per_sec(),
        measurement.speedup(),
        responses,
        high_scale,
        search_responses,
        measurement.search_p99_nanos as f64 / 1e6,
        high_scale_nanos as f64 / 1e9,
    );
    if measurement.high_scale_dropped() > 0 {
        eprintln!(
            "loadgen: FAILED — {} responses dropped at high scale",
            measurement.high_scale_dropped()
        );
        std::process::exit(1);
    }
    // The ≥5× bar is defined at 1k+ connections — below that the
    // baseline never enters its thrash regime and the ratio measures
    // thread-spawn cost, not the scheduling collapse the core fixes.
    if connections >= SERVE_BAR_MIN_CONNECTIONS && measurement.speedup() < SERVE_BAR_MIN_SPEEDUP {
        eprintln!(
            "loadgen: FAILED — {:.1}× speedup at {} connections is under the {:.0}× bar",
            measurement.speedup(),
            connections,
            SERVE_BAR_MIN_SPEEDUP,
        );
        std::process::exit(1);
    }
}

/// The addresses and fixture identity the `--server` child prints on
/// its first stdout line.
#[derive(Debug, Clone)]
struct Fixture {
    baseline: SocketAddr,
    core: SocketAddr,
    telemetry: SocketAddr,
    collection: Uuid,
}

/// Child process: binds the thread-per-connection baseline, the
/// multiplexed TAXII core and a telemetry scrape endpoint over one
/// fixture server, prints their addresses as one JSON line, then parks
/// until killed.
fn server_mode() {
    let mut server = TaxiiServer::new("loadgen fixture");
    let mut collection = Collection::new("iocs", "loadgen indicators");
    let seed: Vec<serde_json::Value> = (0..50)
        .map(|i| {
            serde_json::json!({
                "type": "indicator",
                "value": format!("198.51.100.{i}"),
            })
        })
        .collect();
    collection.add_objects(seed, Timestamp::now());
    let collection_id = server.add_collection(collection);
    let registry = Registry::new();
    server.instrument(&registry);
    // A tight park ceiling keeps worker wake-up latency out of the
    // measured numbers on small machines.
    let config = ServeConfig {
        max_park: Duration::from_micros(500),
        ..ServeConfig::default()
    };
    let baseline = server
        .serve_thread_per_conn("127.0.0.1:0")
        .expect("bind baseline");
    let core = server
        .serve_on_core(
            "127.0.0.1:0",
            config.clone(),
            RegistryServeMetrics::new(&registry, "taxii"),
        )
        .expect("bind core");
    let telemetry = TelemetryServer::bind_on_core(
        registry.clone(),
        None,
        "127.0.0.1:0",
        config,
        RegistryServeMetrics::new(&registry, "telemetry"),
    )
    .expect("bind telemetry");
    println!(
        "{}",
        serde_json::json!({
            "baseline": baseline.to_string(),
            "core": core.local_addr().to_string(),
            "telemetry": telemetry.local_addr().to_string(),
            "collection": collection_id,
        })
    );
    std::io::stdout().flush().expect("flush addrs");
    let debug = std::env::var_os("LOADGEN_DEBUG").is_some();
    loop {
        if debug {
            std::thread::sleep(Duration::from_secs(2));
            eprintln!("loadgen-server: {:?}", core.stats());
        } else {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}

/// The `--server` child and its parsed fixture line; killed on drop so
/// a panicking parent never leaks the process.
struct ServerChild {
    child: Child,
    fixture: Fixture,
}

impl ServerChild {
    fn spawn() -> Self {
        let exe = std::env::current_exe().expect("current exe");
        let mut child = Command::new(exe)
            .arg("--server")
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn --server child");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read fixture line");
        let doc: serde_json::Value = serde_json::from_str(&line).expect("parse fixture line");
        let addr = |key: &str| -> SocketAddr {
            doc[key]
                .as_str()
                .expect("addr field")
                .parse()
                .expect("addr parse")
        };
        let fixture = Fixture {
            baseline: addr("baseline"),
            core: addr("core"),
            telemetry: addr("telemetry"),
            collection: doc["collection"]
                .as_str()
                .expect("collection field")
                .parse()
                .expect("collection uuid"),
        };
        ServerChild { child, fixture }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerChild {
    fn drop(&mut self) {
        self.kill();
    }
}

/// One framed request on the wire: length prefix plus JSON payload.
fn framed_request(payload: &serde_json::Value) -> Vec<u8> {
    let bytes = serde_json::to_vec(payload).expect("serialize request");
    let mut framed = Vec::with_capacity(4 + bytes.len());
    write_frame(&mut framed, &bytes).expect("frame request");
    framed
}

/// Floor/ceiling of the per-connection re-check backoff. Without it,
/// every sweep pays one `read` syscall per waiting connection, and at
/// four-digit connection counts the *client* becomes the measured
/// bottleneck — backing off idle sockets keeps the sweep proportional
/// to ready connections, like a readiness queue would be.
const RECHECK_FLOOR: Duration = Duration::from_micros(100);
const RECHECK_CEIL: Duration = Duration::from_millis(5);

/// One in-flight poll: a nonblocking connection writing its request
/// and accumulating the response frame.
struct PollConn {
    stream: TcpStream,
    request: &'static [u8],
    written: usize,
    buf: Vec<u8>,
    started: Instant,
    next_check: Instant,
    backoff: Duration,
    /// Workload slot in the mixed run ([`MIXED_SEARCH`] polls report
    /// into their own histogram); 0 elsewhere.
    kind: u8,
}

/// The mixed run's search-poll slot tag.
const MIXED_SEARCH: u8 = 1;

/// What one sweep step did to a connection.
enum Step {
    /// The response frame is complete.
    Done,
    /// Bytes moved but the response is still partial.
    Moved,
    /// Nothing to do yet.
    Idle,
}

/// Whether `buf` holds one complete response frame.
fn frame_complete(buf: &[u8]) -> bool {
    if buf.len() < 4 {
        return false;
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    buf.len() >= 4 + len
}

/// Advances one connection: writes what the socket accepts, reads what
/// arrived. `Err(())` when the peer died first.
fn advance(conn: &mut PollConn, scratch: &mut [u8]) -> Result<Step, ()> {
    let mut moved = false;
    while conn.written < conn.request.len() {
        match conn.stream.write(&conn.request[conn.written..]) {
            Ok(0) => return Err(()),
            Ok(n) => {
                conn.written += n;
                moved = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => return Err(()),
            Ok(n) => {
                conn.buf.extend_from_slice(&scratch[..n]);
                moved = true;
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
    if frame_complete(&conn.buf) {
        Ok(Step::Done)
    } else if moved {
        Ok(Step::Moved)
    } else {
        Ok(Step::Idle)
    }
}

/// Steps a connection if its backoff window elapsed; adjusts the window
/// by outcome (reset on movement, double on idleness).
fn step(conn: &mut PollConn, now: Instant, scratch: &mut [u8]) -> Result<Step, ()> {
    if now < conn.next_check {
        return Ok(Step::Idle);
    }
    let outcome = advance(conn, scratch)?;
    match outcome {
        Step::Moved | Step::Done => {
            conn.backoff = RECHECK_FLOOR;
            conn.next_check = now;
        }
        Step::Idle => {
            conn.next_check = now + conn.backoff;
            conn.backoff = (conn.backoff * 2).min(RECHECK_CEIL);
        }
    }
    Ok(outcome)
}

fn open_conn(addr: SocketAddr, request: &'static [u8]) -> std::io::Result<PollConn> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_nonblocking(true)?;
    let now = Instant::now();
    Ok(PollConn {
        stream,
        request,
        written: 0,
        buf: Vec::new(),
        started: now,
        next_check: now,
        backoff: RECHECK_FLOOR,
        kind: 0,
    })
}

/// Poll churn with a **pinned concurrency window**: establishes
/// `target` standing connections (untimed ramp), then cycles each slot
/// through connect → pull → close until `total` polls complete, opening
/// exactly one replacement per completion so the window never decays.
/// A naive closed loop self-regulates instead — against a fast server
/// the in-flight count collapses to whatever the completion rate
/// sustains, and "1000 connections" quietly becomes 50. Every
/// completed poll's request→response wall time lands in `hist`.
/// Returns the wall time of the steady (post-ramp) phase.
fn churn(
    addr: SocketAddr,
    request: &[u8],
    target: usize,
    total: usize,
    hist: &Histogram,
) -> Result<Duration, String> {
    // The request outlives every connection of the phase; leaking one
    // buffer per phase beats per-connection copies.
    let request: &'static [u8] = Box::leak(request.to_vec().into_boxed_slice());
    let window = target.min(total);
    let mut conns: Vec<PollConn> = Vec::with_capacity(window);
    let mut scratch = vec![0u8; 64 * 1024];
    let deadline = Instant::now() + PHASE_TIMEOUT;
    // Ramp, gently: sequential blocking connects with a breath every
    // 256 so the listen backlog never overflows into SYN retransmits.
    for i in 0..window {
        loop {
            match open_conn(addr, request) {
                Ok(conn) => {
                    conns.push(conn);
                    break;
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(format!("churn ramp failed: {e}")),
            }
        }
        if i % 256 == 255 {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    let started = Instant::now();
    let mut launched = window;
    let mut completed = 0usize;
    let debug = std::env::var_os("LOADGEN_DEBUG").is_some();
    let mut next_report = started + Duration::from_secs(2);
    while completed < total {
        let now = Instant::now();
        if now > deadline {
            return Err(format!("churn stalled at {completed}/{total} polls"));
        }
        if debug && now > next_report {
            next_report = now + Duration::from_secs(2);
            eprintln!(
                "loadgen-client: completed {completed}/{total}, in flight {}",
                conns.len()
            );
        }
        let mut progress = false;
        let mut slots_freed = 0usize;
        conns.retain_mut(|conn| match step(conn, now, &mut scratch) {
            Ok(Step::Done) => {
                hist.record(conn.started.elapsed().as_nanos() as u64);
                completed += 1;
                slots_freed += 1;
                progress = true;
                false
            }
            Ok(Step::Moved) => {
                progress = true;
                true
            }
            Ok(Step::Idle) => true,
            Err(()) => {
                // The peer dropped the poll; its replacement relaunches
                // it rather than counting it done.
                launched -= 1;
                slots_freed += 1;
                progress = true;
                false
            }
        });
        // One replacement per freed slot keeps the window pinned
        // without ever bursting connects.
        while slots_freed > 0 && launched < total {
            match open_conn(addr, request) {
                Ok(conn) => {
                    conns.push(conn);
                    launched += 1;
                    slots_freed -= 1;
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_micros(200));
                    break;
                }
            }
        }
        if !progress {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    Ok(started.elapsed())
}

/// The high-scale mixed run: `total` concurrent connections — 70%
/// pulls, 10% ingests, 10% match-filtered search polls, 10% telemetry
/// scrapes — all connected before any request completes, each
/// expecting exactly one response. Search polls record into
/// `search_hist`; everything else into `hist`. Returns `(responses
/// received, search responses received, wall nanos)`.
fn mixed_high_scale(
    fixture: &Fixture,
    total: usize,
    hist: &Histogram,
    search_hist: &Histogram,
) -> (u64, u64, u64) {
    let pull: &'static [u8] = Box::leak(
        framed_request(&serde_json::json!({
            "op": "get-objects",
            "collection": fixture.collection,
            "limit": 10,
        }))
        .into_boxed_slice(),
    );
    let ingest: &'static [u8] = Box::leak(
        framed_request(&serde_json::json!({
            "op": "add-objects",
            "collection": fixture.collection,
            "objects": [{"type": "indicator", "value": "203.0.113.99"}],
        }))
        .into_boxed_slice(),
    );
    // A typed query the server compiles and applies per page — the
    // analyst-search shape of TAXII polling.
    let search: &'static [u8] = Box::leak(
        framed_request(&serde_json::json!({
            "op": "get-objects",
            "collection": fixture.collection,
            "match": "type:indicator AND value:100",
            "limit": 10,
        }))
        .into_boxed_slice(),
    );
    let scrape: &'static [u8] =
        Box::leak(framed_request(&serde_json::json!("prometheus")).into_boxed_slice());

    let started = Instant::now();
    let deadline = started + PHASE_TIMEOUT;
    let mut conns: Vec<PollConn> = Vec::with_capacity(total);
    // Establish the full connection count first — the point is serving
    // breadth, not a pipelined trickle.
    for i in 0..total {
        let (addr, request, kind) = match i % 10 {
            0 => (fixture.core, ingest, 0),
            1 => (fixture.telemetry, scrape, 0),
            2 => (fixture.core, search, MIXED_SEARCH),
            _ => (fixture.core, pull, 0),
        };
        loop {
            match open_conn(addr, request) {
                Ok(mut conn) => {
                    conn.kind = kind;
                    conns.push(conn);
                    break;
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("high-scale connect failed: {e}"),
            }
        }
        if i % 256 == 255 {
            // Give the acceptor a breath so the listen backlog never
            // overflows into SYN retransmission stalls.
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    let mut scratch = vec![0u8; 64 * 1024];
    let mut responses = 0u64;
    let mut search_responses = 0u64;
    while !conns.is_empty() && Instant::now() < deadline {
        let mut progress = false;
        let now = Instant::now();
        conns.retain_mut(|conn| match step(conn, now, &mut scratch) {
            Ok(Step::Done) => {
                let elapsed = conn.started.elapsed().as_nanos() as u64;
                if conn.kind == MIXED_SEARCH {
                    search_hist.record(elapsed);
                    search_responses += 1;
                } else {
                    hist.record(elapsed);
                }
                responses += 1;
                progress = true;
                false
            }
            Ok(Step::Moved) => {
                progress = true;
                true
            }
            Ok(Step::Idle) => true,
            Err(()) => {
                progress = true;
                false
            }
        });
        if !progress {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    (
        responses,
        search_responses,
        started.elapsed().as_nanos() as u64,
    )
}
