//! Machine-readable reduce benchmark: times the indexed reducer
//! against the retained linear-scan baseline on a synthetic
//! 1k-node / 50k-eIoC workload, cross-checks their rIoC output, and
//! writes `BENCH_reduce.json` for CI trend tracking.
//!
//! ```text
//! cargo run --release -p cais-bench --bin reduce_json              # writes BENCH_reduce.json
//! cargo run --release -p cais-bench --bin reduce_json -- -         # print to stdout instead
//! cargo run --release -p cais-bench --bin reduce_json -- 200 5000 500
//!                                       # nodes eiocs linear_sample (smoke-test sizing)
//! ```

use std::sync::Arc;
use std::time::Instant;

use cais_bench::report::{reduce_bench_doc, ReduceBenchMeasurement};
use cais_bench::workloads;
use cais_core::{EvaluationContext, Reducer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let to_stdout = args.first().map(String::as_str) == Some("-");
    let numeric: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let nodes = numeric.first().copied().unwrap_or(1_000);
    let eiocs = numeric.get(1).copied().unwrap_or(50_000);
    let linear_sample = numeric.get(2).copied().unwrap_or(5_000).min(eiocs);

    let ctx = EvaluationContext::paper_use_case();
    let inventory = Arc::new(workloads::synthetic_inventory(42, nodes));
    let population = workloads::reduce_eiocs(42, eiocs, &ctx);

    let indexed = Reducer::new(inventory.clone()).with_cve_database(ctx.cve_db.clone());
    let linear = Reducer::linear_baseline(inventory.clone());

    // Equivalence first (on the slice the baseline can afford): the
    // speedup claim is meaningless if the outputs differ. The linear
    // baseline carries no CVE database, so compare against an indexed
    // reducer configured identically.
    let indexed_plain = Reducer::new(inventory);
    for eioc in &population[..linear_sample] {
        assert_eq!(
            indexed_plain.reduce(eioc),
            linear.reduce(eioc),
            "indexed and linear reducers disagree"
        );
    }

    let started = Instant::now();
    let mut linear_riocs = 0usize;
    for eioc in &population[..linear_sample] {
        linear_riocs += usize::from(linear.reduce(eioc).is_some());
    }
    let linear_nanos = started.elapsed().as_nanos() as u64;

    let started = Instant::now();
    let mut riocs = 0usize;
    for eioc in &population {
        riocs += usize::from(indexed.reduce(eioc).is_some());
    }
    let indexed_nanos = started.elapsed().as_nanos() as u64;

    let m = ReduceBenchMeasurement {
        nodes,
        eiocs,
        linear_sample,
        indexed_nanos,
        linear_nanos,
        riocs,
        stats: indexed.stats(),
    };
    let text = serde_json::to_string_pretty(&reduce_bench_doc(&m)).expect("doc serializes");

    if to_stdout {
        println!("{text}");
    } else {
        let path = "BENCH_reduce.json";
        std::fs::write(path, format!("{text}\n")).expect("write BENCH_reduce.json");
        eprintln!(
            "wrote {path}: {nodes} nodes, {eiocs} eIoCs -> {riocs} rIoCs \
             ({linear_riocs} from the {linear_sample}-eIoC linear sample), \
             speedup {:.1}x",
            m.speedup()
        );
    }
}
