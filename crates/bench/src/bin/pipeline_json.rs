//! Machine-readable pipeline benchmark: runs one parallel ingestion
//! round over a seeded synthetic workload and writes
//! `BENCH_pipeline.json` (per-stage throughput plus the platform's
//! telemetry snapshot) for CI trend tracking.
//!
//! ```text
//! cargo run -p cais-bench --bin pipeline_json            # writes BENCH_pipeline.json
//! cargo run -p cais-bench --bin pipeline_json -- -       # print to stdout instead
//! ```

use cais_bench::workloads;
use serde_json::json;

fn main() {
    let mut platform = workloads::platform();
    let seed = 42;
    let feeds = 8;
    let records_per_feed = 250;
    let workers = 4;
    let records = workloads::record_stream(
        seed,
        feeds,
        records_per_feed,
        0.25,
        0.2,
        platform.context().now,
    );
    let total_records = records.len();
    let report = platform
        .ingest_feed_records_parallel(records, workers)
        .expect("synthetic ingestion cannot fail");
    let snapshot = platform.telemetry().snapshot();

    let stages: Vec<_> = report
        .stages
        .stages()
        .into_iter()
        .map(|(name, stage)| {
            json!({
                "stage": name,
                "records_in": stage.records_in,
                "records_out": stage.records_out,
                "dropped": stage.dropped,
                "wall_nanos": stage.wall_nanos,
                "input_throughput_rps": stage.throughput(),
                "output_throughput_rps": stage.output_throughput(),
            })
        })
        .collect();

    let doc = json!({
        "benchmark": "pipeline_json",
        "workload": {
            "seed": seed,
            "feeds": feeds,
            "records_per_feed": records_per_feed,
            "records": total_records,
            "workers": workers,
        },
        "totals": {
            "records_in": report.records_in,
            "nlp_filtered": report.nlp_filtered,
            "benign_filtered": report.benign_filtered,
            "duplicates_dropped": report.duplicates_dropped,
            "ciocs": report.ciocs,
            "eiocs": report.eiocs,
            "riocs": report.riocs,
            "total_nanos": report.stages.total_nanos(),
        },
        "stages": stages,
        "telemetry": serde_json::to_value(&snapshot).expect("snapshot serializes"),
    });
    let text = serde_json::to_string_pretty(&doc).expect("report serializes");

    if std::env::args().nth(1).as_deref() == Some("-") {
        println!("{text}");
        return;
    }
    let path = "BENCH_pipeline.json";
    std::fs::write(path, format!("{text}\n")).expect("write BENCH_pipeline.json");
    eprintln!(
        "wrote {path}: {total_records} records -> {} cIoCs, {} eIoCs, {} rIoCs",
        report.ciocs, report.eiocs, report.riocs
    );
}
