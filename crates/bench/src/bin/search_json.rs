//! Machine-readable search benchmark: an incremental inverted index
//! built over a 200k-event / 1M-attribute store, queried across every
//! query-language axis (type, tag, org, value token, score and date
//! ranges, boolean combinations) while a churn writer concurrently
//! mutates events, with the index re-synced from the store changelog
//! every 64 queries. Indexed results are checked against the
//! linear-scan [`matches_event`] oracle before and after churn — a
//! mismatch aborts the run, which fails CI — and the run is held to
//! two bars: sub-millisecond p99 single-query latency, and ≥5×
//! incremental-sync speedup over a from-scratch rebuild after ~1%
//! churn. Writes `BENCH_search.json` for trend tracking.
//!
//! ```text
//! cargo run --release -p cais-bench --bin search_json              # writes BENCH_search.json
//! cargo run --release -p cais-bench --bin search_json -- -         # print to stdout instead
//! cargo run --release -p cais-bench --bin search_json -- 2000 400  # events queries (smoke sizing)
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cais_bench::report::{
    search_bench_doc, SearchBenchMeasurement, SEARCH_BAR_MAX_P99_NANOS,
    SEARCH_BAR_MIN_INCREMENTAL_SPEEDUP,
};
use cais_bench::workloads;
use cais_common::time::MILLIS_PER_DAY;
use cais_common::Timestamp;
use cais_misp::{MispStore, SearchBackend, SearchQuery};
use cais_search::{matches_event, Query, SearchIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Queries per index re-sync in the timed loop — the serving cadence a
/// search endpoint riding the changelog would use.
const SYNC_EVERY: usize = 64;

/// Fraction of the store churned before the incremental-vs-rebuild
/// comparison.
const CHURN_FRACTION: f64 = 0.01;

/// The timed query pool: analyst-lookup shapes spanning every indexed
/// axis (type, tag, org, value token, published flag, score and date
/// ranges, AND/OR/NOT). Each is selective — a value token or a tight
/// range keeps hits in the hundreds-to-low-thousands, the shape of a
/// real pivot query — because the timer covers result materialization
/// too, and a query that drags 25% of a 200k-event store back is a
/// bulk export, not a search. `{date}` is substituted with an RFC 3339
/// instant two days before the population's "now".
const TIMED_QUERIES: &[&str] = &[
    "type:ip-dst AND tag:tlp:red AND value:137",
    "org:circl AND value:9100",
    "value:4242",
    "tag:tlp:amber AND NOT org:fleet-soc AND type:url AND value:59",
    "published:false AND tag:tlp:green AND value:42",
    "score >= 4.9",
    "(org:circl OR org:partner-isac) AND score >= 3.0 AND type:domain AND value:7",
    "date >= {date} AND type:url AND value:11",
];

/// The `(id, version)` pairs the linear-scan oracle returns for a
/// typed query.
fn linear_ids(store: &MispStore, query: &Query) -> Vec<(u64, u64)> {
    let mut ids: Vec<(u64, u64)> = store
        .snapshot()
        .iter()
        .filter(|v| matches_event(query, &v.event))
        .map(|v| (v.event.id, v.version))
        .collect();
    ids.sort_unstable();
    ids
}

/// Asserts the freshly synced index answers every pool query exactly
/// as the linear oracle does.
fn assert_equivalent(index: &SearchIndex, store: &MispStore, pool: &[Query], label: &str) {
    index.sync(store);
    for query in pool {
        let indexed: Vec<(u64, u64)> = index
            .search(query)
            .iter()
            .map(|v| (v.event.id, v.version))
            .collect();
        let linear = linear_ids(store, query);
        assert!(
            indexed == linear,
            "{label}: indexed results diverge from the linear oracle on `{query}` \
             ({} indexed vs {} linear)",
            indexed.len(),
            linear.len(),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let to_stdout = args.first().map(String::as_str) == Some("-");
    let numeric: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let events = numeric.first().copied().unwrap_or(200_000);
    let queries = numeric
        .get(1)
        .copied()
        .unwrap_or(4_000)
        .max(TIMED_QUERIES.len());

    let now = Timestamp::from_unix_millis(50 * MILLIS_PER_DAY);
    let store = Arc::new(MispStore::new());
    let mut attributes = 0;
    let mut ids = Vec::with_capacity(events);
    let phase = Instant::now();
    for event in workloads::search_events(42, events, now) {
        attributes += event.attributes.len();
        ids.push(store.insert(event).expect("insert"));
    }
    eprintln!(
        "search_json: populated {events} events / {attributes} attributes in {:.1}s",
        phase.elapsed().as_secs_f64()
    );

    let pool: Vec<Query> = TIMED_QUERIES
        .iter()
        .map(|q| q.replace("{date}", &now.add_days(-2).to_rfc3339()))
        .map(|q| Query::parse(&q).expect("pool query parses"))
        .collect();

    // Cold build: the first sync walks the full snapshot.
    let started = Instant::now();
    let summary = index_cold_build(&store);
    let (index, cold_build_nanos) = (summary, started.elapsed().as_nanos() as u64);
    eprintln!(
        "search_json: cold build {:.1}s",
        cold_build_nanos as f64 / 1e9
    );
    let phase = Instant::now();
    assert_equivalent(&index, &store, &pool, "pre-churn");
    eprintln!(
        "search_json: pre-churn equivalence {:.1}s",
        phase.elapsed().as_secs_f64()
    );

    // Concurrent churn writer: seeded random single-event updates at a
    // steady ~20k ops/s for the whole timed window, so every periodic
    // sync really absorbs changelog deltas.
    let running = Arc::new(AtomicBool::new(true));
    let churn_ops = Arc::new(AtomicU64::new(0));
    let writer = {
        let store = Arc::clone(&store);
        let running = Arc::clone(&running);
        let churn_ops = Arc::clone(&churn_ops);
        let ids = ids.clone();
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut round = 0u64;
            while running.load(Ordering::Relaxed) {
                let id = ids[rng.gen_range(0..ids.len())];
                round += 1;
                let ok = store
                    .update(id, |event| {
                        event.info = format!("advisory {id} (live churn {round})");
                    })
                    .is_ok();
                if ok {
                    churn_ops.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        })
    };

    // Timed loop: single-query latencies, with a changelog sync every
    // SYNC_EVERY queries (outside the per-query timers — sync cost is
    // measured separately below).
    let phase = Instant::now();
    let mut nanos: Vec<u64> = Vec::with_capacity(queries);
    let mut hits = 0u64;
    for i in 0..queries {
        if i % SYNC_EVERY == 0 {
            index.sync(&store);
        }
        let query = &pool[i % pool.len()];
        let started = Instant::now();
        let results = index.search(query);
        nanos.push(started.elapsed().as_nanos() as u64);
        hits += results.len() as u64;
    }
    running.store(false, Ordering::Relaxed);
    writer.join().expect("churn writer");
    let churn_ops = churn_ops.load(Ordering::Relaxed);
    eprintln!(
        "search_json: timed loop {:.1}s ({churn_ops} live churn ops)",
        phase.elapsed().as_secs_f64()
    );
    let phase = Instant::now();
    assert_equivalent(&index, &store, &pool, "post-churn");
    eprintln!(
        "search_json: post-churn equivalence {:.1}s",
        phase.elapsed().as_secs_f64()
    );

    // One legacy-filter probe through the SearchBackend seam: the
    // compiled SearchQuery must answer exactly like the store's
    // retained linear path.
    let legacy = SearchQuery {
        attr_type: Some("ip-dst".to_owned()),
        tag: Some("tlp:red".to_owned()),
        published_only: true,
        ..SearchQuery::default()
    };
    let via_backend: Vec<(u64, u64)> = index
        .search_query(&store, &legacy)
        .iter()
        .map(|v| (v.event.id, v.version))
        .collect();
    let via_linear: Vec<(u64, u64)> = store
        .search_linear(&legacy)
        .iter()
        .map(|v| (v.event.id, v.version))
        .collect();
    assert_eq!(
        via_backend, via_linear,
        "SearchBackend diverges from search_linear"
    );

    // Incremental vs rebuild over the same ~1% churn.
    let churned = workloads::churn_events(&store, CHURN_FRACTION, u64::MAX);
    let started = Instant::now();
    let summary = index.sync(&store);
    let incremental_sync_nanos = started.elapsed().as_nanos() as u64;
    assert!(!summary.rebuilt, "incremental sync fell back to a rebuild");
    assert_eq!(
        summary.reindexed, churned,
        "incremental sync must reindex exactly the churned events"
    );
    let started = Instant::now();
    let summary = index.rebuild(&store);
    let rebuild_nanos = started.elapsed().as_nanos() as u64;
    assert!(summary.rebuilt, "rebuild did not rebuild");
    assert_equivalent(&index, &store, &pool, "post-rebuild");

    nanos.sort_unstable();
    let rank = |q: f64| nanos[((nanos.len() - 1) as f64 * q) as usize];
    let m = SearchBenchMeasurement {
        events,
        attributes,
        queries,
        churn_ops,
        cold_build_nanos,
        query_wall_nanos: nanos.iter().sum(),
        p50_nanos: rank(0.50),
        p95_nanos: rank(0.95),
        p99_nanos: rank(0.99),
        hits,
        churned,
        incremental_sync_nanos,
        rebuild_nanos,
        equivalent: true,
    };
    eprintln!(
        "search_json: {events} events / {attributes} attributes, {queries} queries under \
         {churn_ops} churn ops -> p50 {:.1}µs p95 {:.1}µs p99 {:.1}µs ({:.0} queries/s); \
         sync {:.2}ms vs rebuild {:.1}ms after {churned} churned ({:.1}x)",
        m.p50_nanos as f64 / 1e3,
        m.p95_nanos as f64 / 1e3,
        m.p99_nanos as f64 / 1e3,
        m.queries_per_sec(),
        m.incremental_sync_nanos as f64 / 1e6,
        m.rebuild_nanos as f64 / 1e6,
        m.incremental_speedup(),
    );
    assert!(
        m.p99_nanos < SEARCH_BAR_MAX_P99_NANOS,
        "p99 {}ns breaches the {}ns bar",
        m.p99_nanos,
        SEARCH_BAR_MAX_P99_NANOS
    );
    assert!(
        m.incremental_speedup() >= SEARCH_BAR_MIN_INCREMENTAL_SPEEDUP,
        "incremental sync speedup {:.1}x is below the {:.0}x bar",
        m.incremental_speedup(),
        SEARCH_BAR_MIN_INCREMENTAL_SPEEDUP
    );
    let text = serde_json::to_string_pretty(&search_bench_doc(&m)).expect("doc serializes");

    if to_stdout {
        println!("{text}");
    } else {
        let path = "BENCH_search.json";
        std::fs::write(path, format!("{text}\n")).expect("write BENCH_search.json");
        eprintln!("wrote {path}");
    }
}

/// Builds the index with its first (full-walk) sync and returns it.
fn index_cold_build(store: &MispStore) -> SearchIndex {
    let index = SearchIndex::new();
    let summary = index.sync(store);
    assert!(summary.rebuilt, "cold sync must walk the full snapshot");
    index
}
