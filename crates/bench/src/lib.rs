//! # cais-bench
//!
//! Shared workloads for the benchmark harness, plus the generators the
//! `report` binary uses to regenerate every table and figure of the
//! paper (see `EXPERIMENTS.md` at the repository root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod report;
pub mod workloads;
