//! A realistic multi-feed OSINT round: synthetic feeds in three wire
//! formats are parsed, deduplicated, aggregated, scored and reduced
//! while sensor traffic raises alarms that feed the heuristics.
//!
//! Run with `cargo run --example osint_pipeline`.

use cais::core::{CoreError, Platform};
use cais::feeds::parse;
use cais::feeds::synth::{SyntheticConfig, SyntheticFeedSet};
use cais::infra::sensors::{hids, nids};
use cais::nlp::ThreatClassifier;

fn main() -> Result<(), CoreError> {
    let mut platform = Platform::paper_use_case();
    let now = platform.context().now;

    // --- the infrastructure is under some background attack ---
    let inventory = cais::infra::inventory::Inventory::paper_table3();
    let packets = nids::generate_traffic(42, 2_000, 0.08, &inventory, now.add_days(-1));
    platform.ingest_packets(&packets);
    let logs = hids::generate_logs(42, 1_000, 0.05, &inventory, now.add_days(-1));
    platform.ingest_logs(&logs);
    println!(
        "sensors: {} alarms raised, {} observables sighted internally",
        platform.context().alarms.read().len(),
        platform.context().sightings.distinct_observables(),
    );

    // --- six OSINT feeds publish, with heavy duplication/overlap ---
    let feed_set = SyntheticFeedSet::generate(&SyntheticConfig {
        seed: 42,
        feeds: 6,
        records_per_feed: 400,
        duplicate_rate: 0.25,
        overlap_rate: 0.35,
        base_time: now.add_days(-10),
        ..SyntheticConfig::default()
    });
    println!(
        "\nfeeds: {} records published, {} genuinely distinct",
        feed_set.total_record_count(),
        feed_set.unique_record_count(),
    );

    // Parse each feed from its wire format, as the collector would.
    let mut all_records = Vec::new();
    for feed in &feed_set.feeds {
        let records = parse::parse_payload(feed.format, &feed.payload, &feed.name, feed.category)?;
        println!(
            "  {:<18} {:>4} records ({:?})",
            feed.name,
            records.len(),
            feed.format
        );
        all_records.extend(records);
    }

    // A few advisories in the stream concern software we actually run —
    // these are the needles the context-aware scoring must surface.
    for (cve, description) in [
        ("CVE-2017-9805", "remote code execution in apache struts"),
        (
            "CVE-2018-8000",
            "arbitrary file read in gitlab repositories",
        ),
        ("CVE-2016-10033", "phpmailer RCE hitting php stacks"),
    ] {
        all_records.push(
            cais::feeds::FeedRecord::new(
                cais::common::Observable::new(cais::common::ObservableKind::Cve, cve),
                cais::feeds::ThreatCategory::VulnerabilityExploitation,
                "targeted-advisories",
                now.add_days(-30),
            )
            .with_cve(cve)
            .with_description(description),
        );
    }

    // NLP triage of the advisory descriptions (Section II-A).
    let classifier = ThreatClassifier::new();
    let relevant = all_records
        .iter()
        .filter_map(|r| r.description.as_deref())
        .filter(|d| classifier.classify(d).is_relevant())
        .count();
    println!("nlp: {relevant} record descriptions classified threat-relevant");

    // --- one ingestion round through the full pipeline ---
    let report = platform.ingest_feed_records(all_records)?;
    println!("\npipeline report:");
    println!("  records in:          {}", report.records_in);
    println!(
        "  duplicates dropped:  {} ({:.1}%)",
        report.duplicates_dropped,
        100.0 * report.duplicates_dropped as f64 / report.records_in as f64
    );
    println!("  composed IoCs:       {}", report.ciocs);
    println!("  enriched IoCs:       {}", report.eiocs);
    println!("  reduced IoCs:        {}", report.riocs);
    println!("  MISP events stored:  {}", platform.misp().store().len());

    // Score distribution of the enriched population.
    let mut scores: Vec<f64> = platform.eiocs().iter().map(|e| e.score()).collect();
    scores.sort_by(f64::total_cmp);
    if !scores.is_empty() {
        println!(
            "\nthreat scores: min={:.2} median={:.2} max={:.2}",
            scores[0],
            scores[scores.len() / 2],
            scores[scores.len() - 1],
        );
    }
    Ok(())
}
