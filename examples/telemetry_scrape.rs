//! Telemetry end to end: an instrumented platform run, scraped over
//! TCP in both exposition formats.
//!
//! Run with `cargo run --example telemetry_scrape`.
//!
//! Every `Platform` carries a telemetry registry; the broker, the MISP
//! store and the ingestion pipeline record into it as a side effect of
//! normal operation. This example wires the remaining pieces — an
//! instrumented dashboard stream and a feed-parse-error counter —
//! ingests a synthetic OSINT batch plus the paper's Struts advisory,
//! then serves the registry on a loopback [`TelemetryServer`] and
//! scrapes it like an external monitoring system would.

use cais::common::{Observable, ObservableKind};
use cais::core::Platform;
use cais::dashboard::{DashboardState, DashboardStream};
use cais::feeds::synth::{SyntheticConfig, SyntheticFeedSet};
use cais::feeds::{FeedError, FeedIngestMetrics, FeedRecord, ThreatCategory};
use cais::infra::inventory::Inventory;
use cais::telemetry::{scrape, TelemetryServer};

fn main() -> std::io::Result<()> {
    let mut platform = Platform::paper_use_case();

    // The dashboard stream shares the platform's registry, so its
    // decode failures land on the same scrape endpoint.
    let mut dashboard = DashboardStream::attach(
        DashboardState::new(Inventory::paper_table3()),
        platform.broker(),
    );
    dashboard.instrument(platform.telemetry());

    // A synthetic OSINT batch plus the Section IV Struts advisory.
    let now = platform.context().now;
    let mut records = SyntheticFeedSet::generate(&SyntheticConfig {
        seed: 7,
        feeds: 4,
        records_per_feed: 100,
        duplicate_rate: 0.25,
        overlap_rate: 0.2,
        base_time: now.add_days(-10),
        ..SyntheticConfig::default()
    })
    .all_records();
    records.push(
        FeedRecord::new(
            Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
            ThreatCategory::VulnerabilityExploitation,
            "nvd-feed",
            now.add_days(-100),
        )
        .with_cve("CVE-2017-9805")
        .with_description("remote code execution in apache struts"),
    );
    let report = platform
        .ingest_feed_records_parallel(records, 4)
        .expect("ingestion succeeds");
    println!(
        "ingested {} records -> {} cIoCs, {} eIoCs, {} rIoCs",
        report.records_in, report.ciocs, report.eiocs, report.riocs
    );

    // A malformed publisher on the alarm topic: the dashboard counts
    // the decode failure instead of dying.
    platform.broker().publish(
        cais::bus::Topic::new(cais::bus::topics::ALARM_RAISED),
        serde_json::json!("not an alarm"),
    );
    dashboard.pump();

    // A feed source that fails to parse, recorded the way
    // `FeedScheduler::instrument` would.
    let feed_metrics = FeedIngestMetrics::new(platform.telemetry());
    feed_metrics.observe_error(&FeedError::Parse {
        source_name: "broken-feed".into(),
        line: Some(3),
        reason: "unterminated record".into(),
    });

    // Serve the registry and scrape it over TCP, both formats.
    let server = TelemetryServer::bind(
        platform.telemetry().clone(),
        Some(platform.tracer().clone()),
        "127.0.0.1:0",
    )?;
    let prometheus = scrape(server.local_addr(), "prometheus")?;
    let json = scrape(server.local_addr(), "json")?;

    println!("\n--- prometheus exposition ({}) ---", server.local_addr());
    print!("{prometheus}");
    println!("\n--- json snapshot ---");
    println!("{json}");

    // The scrape reflects every instrumented subsystem.
    let snapshot: cais::telemetry::Snapshot =
        serde_json::from_str(&json).expect("snapshot round-trips");
    let stage_histograms = snapshot
        .histograms
        .iter()
        .filter(|(name, h)| name.starts_with("pipeline_stage_nanos") && h.count > 0)
        .count();
    assert!(stage_histograms > 0, "stage histograms recorded");
    assert!(snapshot.counters["bus_published_total"] > 0);
    assert!(snapshot.counters["misp_events_inserted_total"] > 0);
    assert!(snapshot.counters["dashboard_riocs_applied_total"] > 0);
    assert_eq!(snapshot.counters["dashboard_decode_failures_total"], 1);
    assert_eq!(snapshot.counters["feeds_parse_errors_total"], 1);
    println!(
        "scrape OK: {} stage histograms, {} counters, {} gauges",
        stage_histograms,
        snapshot.counters.len(),
        snapshot.gauges.len()
    );
    Ok(())
}
