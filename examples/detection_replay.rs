//! Intelligence back into detection: a partner shares STIX indicators,
//! the platform arms their patterns, and live traffic replay produces
//! detections, sightings and — on the next scoring round — higher
//! threat scores for the corroborated intelligence.
//!
//! Run with `cargo run --example detection_replay`.

use cais::common::{Observable, ObservableKind};
use cais::core::{CoreError, Platform};
use cais::feeds::{FeedRecord, ThreatCategory};
use cais::infra::sensors::nids;
use cais::stix::prelude::*;

fn main() -> Result<(), CoreError> {
    let mut platform = Platform::paper_use_case();
    let now = platform.context().now;
    let detection_feed = platform.broker().subscribe("cais.detection.fired");

    // --- a partner shares indicators over STIX ---
    let stamp = now.add_days(-1);
    let mut c2 = Indicator::builder("[ipv4-addr:value = '203.0.113.77']", stamp);
    c2.name("emotet-c2-tier1")
        .label("malicious-activity")
        .created(stamp)
        .modified(stamp);
    let mut two_stage = Indicator::builder(
        "[ipv4-addr:value = '203.0.113.77'] FOLLOWEDBY [ipv4-addr:value = '198.51.100.7']",
        stamp,
    );
    two_stage
        .name("emotet-staging-chain")
        .label("malicious-activity")
        .created(stamp)
        .modified(stamp);
    let bundle = Bundle::new(vec![c2.build().into(), two_stage.build().into()]);
    let scored = platform.ingest_stix_bundle(&bundle)?;
    println!(
        "partner bundle: {scored} objects scored, {} indicators armed",
        platform.armed_indicators()
    );

    // --- live traffic replays against the armed patterns ---
    let flows = [
        ("198.51.100.200", "192.168.1.11"), // benign
        ("203.0.113.77", "192.168.1.12"),   // first stage
        ("198.51.100.7", "192.168.1.12"),   // second stage
    ];
    for (i, (src, dst)) in flows.iter().enumerate() {
        let packet = nids::Packet {
            at: now.add_millis(i as i64 * 1_000),
            src_ip: (*src).into(),
            dst_ip: (*dst).into(),
            dst_port: 443,
            payload: "tls handshake".into(),
        };
        platform.ingest_packets(&[packet]);
    }
    for message in detection_feed.drain() {
        let detection: cais::core::Detection = message.decode().expect("detection payload");
        println!(
            "detection: {} matched {} observation(s)",
            detection.indicator_name, detection.matched_observations
        );
    }

    // --- the corroboration raises subsequent threat scores ---
    let advisory = |platform: &Platform| {
        FeedRecord::new(
            Observable::new(ObservableKind::Ipv4, "203.0.113.77"),
            ThreatCategory::CommandAndControl,
            "partner-feed",
            platform.context().now.add_days(-2),
        )
        .with_description("emotet c2 node")
    };
    let report = platform.ingest_feed_records(vec![advisory(&platform)])?;
    let corroborated = platform.eiocs().last().expect("enriched").score();
    println!(
        "\nscored the corroborated C2 advisory: TS={corroborated:.4} \
         ({} cIoC, source confirmed by detection engine)",
        report.ciocs
    );

    // Compare with a platform that never saw the traffic.
    let mut cold = Platform::paper_use_case();
    cold.ingest_feed_records(vec![advisory(&cold)])?;
    let cold_score = cold.eiocs().last().expect("enriched").score();
    println!("without the detection evidence it scores: TS={cold_score:.4}");
    assert!(corroborated > cold_score);
    println!(
        "\ncontext-awareness delta: +{:.4} from infrastructure confirmation",
        corroborated - cold_score
    );
    Ok(())
}
