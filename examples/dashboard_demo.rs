//! The live dashboard (Fig. 2): sensors raise alarms, the pipeline
//! publishes rIoCs, the dashboard stream folds both into badges and
//! renders ASCII to stdout plus an HTML page to `target/dashboard.html`.
//!
//! Run with `cargo run --example dashboard_demo`.

use cais::common::{Observable, ObservableKind};
use cais::core::Platform;
use cais::dashboard::{render, DashboardState, DashboardStream, IssueBoard, SecurityIssue};
use cais::feeds::{FeedRecord, ThreatCategory};
use cais::infra::inventory::Inventory;
use cais::infra::sensors::nids;

fn main() -> std::io::Result<()> {
    let mut platform = Platform::paper_use_case();
    let mut stream = DashboardStream::attach(
        DashboardState::new(Inventory::paper_table3()),
        platform.broker(),
    );
    let now = platform.context().now;

    // Attack traffic raises alarms on the bus…
    let inventory = Inventory::paper_table3();
    let packets = nids::generate_traffic(7, 800, 0.1, &inventory, now.add_days(-1));
    platform.ingest_packets(&packets);

    // …and OSINT advisories become rIoCs.
    for (cve, description, days) in [
        (
            "CVE-2017-9805",
            "remote code execution in apache struts",
            100,
        ),
        (
            "CVE-2018-1000[0]1",
            "gitlab unauthorized repository access",
            20,
        ),
        (
            "CVE-2016-10033",
            "phpmailer RCE affecting php applications",
            200,
        ),
        (
            "CVE-2019-0001",
            "kernel flaw affecting all linux systems",
            5,
        ),
    ] {
        let cve = cve.replace("[0]", "0"); // keep CVE shapes valid
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Cve, cve.as_str()),
            ThreatCategory::VulnerabilityExploitation,
            "advisory-feed",
            now.add_days(-days),
        )
        .with_cve(cve)
        .with_description(description);
        platform
            .ingest_feed_records(vec![record])
            .expect("ingestion succeeds");
    }

    // The socket pump applies everything that was published.
    let applied = stream.pump();
    println!(
        "stream applied {applied} updates ({} riocs, {} alarms)\n",
        stream.applied_riocs(),
        stream.applied_alarms()
    );

    // Fig. 2 in ASCII.
    println!("{}", render::ascii(stream.state()));

    // The capped triage board (future-work scale handling).
    let mut board = IssueBoard::with_cap(3);
    for rioc in stream.state().riocs() {
        board.push(SecurityIssue::from_rioc(rioc, stream.state().inventory()));
    }
    println!("top issues:");
    for issue in board.issues() {
        println!(
            "  {} TS={:.4} [{}] {}",
            issue.cve.as_deref().unwrap_or("-"),
            issue.threat_score,
            issue.priority,
            issue.description
        );
    }

    // The temporal view: alarm activity bucketed into 12 windows of
    // two hours each, ending now.
    let timeline = cais::dashboard::Timeline::build(stream.state(), now, 2 * 3_600_000, 12);
    println!("\n{}", timeline.to_ascii());

    // Fig. 2 as HTML, for a browser.
    let html = render::html(stream.state());
    let path = std::path::Path::new("target").join("dashboard.html");
    std::fs::create_dir_all("target")?;
    std::fs::write(&path, html)?;
    println!("\nHTML dashboard written to {}", path.display());
    Ok(())
}
