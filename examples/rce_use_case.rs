//! The paper's Section IV use case, end to end: the CVE-2017-9805
//! Remote Code Execution IoC scored against the Table III inventory,
//! reproducing Table V's feature values, weights and the final
//! TS = 2.7406.
//!
//! Run with `cargo run --example rce_use_case`.

use cais::core::heuristics::{vulnerability, HeuristicKind};
use cais::core::EvaluationContext;
use cais::dashboard::{DashboardState, NodeView, SecurityIssue};
use cais::infra::inventory::Inventory;
use cais::infra::NodeId;

fn main() {
    println!("== Table III: infrastructure inventory ==");
    let inventory = Inventory::paper_table3();
    for node in inventory.nodes() {
        println!(
            "  {:<8} {:<10} apps: {}",
            node.id.to_string(),
            node.name,
            node.applications.join(", ")
        );
    }
    println!("  all nodes: {}", inventory.common_keywords().join(", "));

    println!("\n== The incoming IoC (STIX 2.0 vulnerability) ==");
    let ioc = vulnerability::paper_rce_ioc();
    println!(
        "  {} — {}",
        ioc.name,
        ioc.description.as_deref().unwrap_or("-")
    );
    println!(
        "  os={:?} app={:?} cvss={:?}",
        ioc.operating_systems, ioc.affected_applications, ioc.cvss_score
    );

    println!("\n== Table V: heuristic analysis ==");
    let ctx = EvaluationContext::paper_use_case();
    let score = vulnerability::evaluate(&ioc, &ctx);
    println!(
        "  {:<22} {:>5} {:>8} {:>14}",
        "feature", "Xi", "Pi", "contribution"
    );
    for line in &score.breakdown().lines {
        println!(
            "  {:<22} {:>5} {:>8.4} {:>14.4}",
            line.feature,
            match line.value {
                cais::core::FeatureValue::Empty => "-".to_owned(),
                cais::core::FeatureValue::Scored(v) => v.to_string(),
            },
            line.weight,
            line.contribution,
        );
    }
    println!(
        "  completeness Cp = {}/{} = {:.4}",
        score.breakdown().evaluated,
        score.breakdown().total_features,
        score.completeness()
    );
    if let Some(totals) = score.breakdown().criteria_totals {
        println!(
            "  criteria totals: R={} A={} T={} V={}",
            totals.relevance, totals.accuracy, totals.timeliness, totals.variety
        );
    }
    println!(
        "\n  TS(RCE) = Cp × Σ Xi·Pi = {:.4}   (paper: 2.7406, heuristic: {})",
        score.total(),
        HeuristicKind::Vulnerability,
    );
    println!("  priority: {}", score.priority_label());

    println!("\n== Figures 3 & 4: visualization ==");
    let mut state = DashboardState::new(inventory.clone());
    let rioc = cais::core::ReducedIoc {
        id: cais::common::Uuid::new_v5("rce-use-case"),
        cve: Some("CVE-2017-9805".into()),
        description: ioc.description.clone().unwrap_or_default(),
        affected_application: Some("apache".into()),
        threat_score: score.total(),
        criteria: None,
        nodes: vec![NodeId(4)],
        via_common_keyword: false,
        misp_event_id: None,
    };
    state.apply_rioc(rioc.clone());
    let view = NodeView::build(&state, NodeId(4)).expect("node 4");
    println!(
        "  node: {} ({:?}) os={} ips={:?} networks={:?}",
        view.name, view.node_type, view.operating_system, view.known_ips, view.networks
    );
    println!(
        "  badge: alarms={} riocs={}",
        view.badge.alarm_count(),
        view.badge.riocs
    );
    let issue = SecurityIssue::from_rioc(&rioc, &state.inventory().clone());
    println!(
        "  issue: {} TS={:.4} [{}] affects {}",
        issue.cve.as_deref().unwrap_or("-"),
        issue.threat_score,
        issue.priority,
        issue.affected_nodes.join(", "),
    );
}
