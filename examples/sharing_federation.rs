//! Information sharing with external entities (Section III-C2): MISP
//! instance-to-instance sync with distribution-level downgrades, plus
//! STIX 2.0 sharing over the TAXII-like channel for partners that do
//! not speak MISP.
//!
//! Run with `cargo run --example sharing_federation`.

use cais::common::{Observable, ObservableKind};
use cais::core::Platform;
use cais::feeds::{FeedRecord, ThreatCategory};
use cais::misp::{sync, MispApi};
use cais::taxii::{Collection, TaxiiClient, TaxiiServer};

fn main() -> std::io::Result<()> {
    // --- the producing organization runs the platform ---
    let mut platform = Platform::paper_use_case();
    let now = platform.context().now;
    for (cve, description) in [
        ("CVE-2017-9805", "remote code execution in apache struts"),
        ("CVE-2017-5638", "struts jakarta multipart parser RCE"),
        ("CVE-2014-0160", "openssl heartbeat information disclosure"),
    ] {
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Cve, cve),
            ThreatCategory::VulnerabilityExploitation,
            "nvd-feed",
            now.add_days(-50),
        )
        .with_cve(cve)
        .with_description(description);
        platform
            .ingest_feed_records(vec![record])
            .expect("ingestion succeeds");
    }
    println!(
        "producer: {} events stored, {} enriched",
        platform.misp().store().len(),
        platform.eiocs().len()
    );

    // --- MISP-to-MISP: push to a trusted partner ---
    let partner = MispApi::new("partner-org");
    let report = sync::push(platform.misp(), &partner);
    println!(
        "misp sync: considered={} transferred={} withheld={} (already={})",
        report.considered, report.transferred, report.withheld, report.already_present
    );
    // Idempotent on re-push.
    let again = sync::push(platform.misp(), &partner);
    println!("misp re-sync: already_present={}", again.already_present);

    // --- TAXII: STIX 2.0 for non-MISP consumers ---
    let mut server = TaxiiServer::new("CAIS sharing point");
    let collection_id = server.add_collection(Collection::new(
        "enriched-iocs",
        "eIoCs with threat scores, STIX 2.0",
    ));
    let addr = server.serve("127.0.0.1:0")?;
    let client = TaxiiClient::connect(addr)?;
    println!("\ntaxii: connected to {:?}", client.discovery()?);

    // Export every stored event as a STIX bundle and publish the
    // objects into the collection.
    let mut shared_objects = 0;
    for versioned in platform.misp().store().snapshot().iter() {
        let bundle = cais::misp::export::stix2::to_bundle(&versioned.event);
        let objects: Vec<serde_json::Value> = bundle
            .objects()
            .iter()
            .map(|o| serde_json::to_value(o).expect("stix serializes"))
            .collect();
        shared_objects += client.add_objects(&collection_id, objects)?;
    }
    println!("taxii: {shared_objects} STIX objects shared");

    // A consumer pulls everything, paged.
    let pulled = client.all_objects(&collection_id)?;
    println!("taxii: consumer pulled {} objects", pulled.len());
    let vulnerabilities = pulled
        .iter()
        .filter(|o| o["type"] == "vulnerability")
        .count();
    println!("taxii: of which {vulnerabilities} vulnerability SDOs");
    Ok(())
}
