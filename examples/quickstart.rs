//! Quickstart: one advisory through the whole platform.
//!
//! Run with `cargo run --example quickstart`.

use cais::common::{Observable, ObservableKind};
use cais::core::{CoreError, Platform, ReducedIoc};
use cais::feeds::{FeedRecord, ThreatCategory};

fn main() -> Result<(), CoreError> {
    // The platform configured exactly like the paper's Section IV use
    // case: Table III inventory, local CVE knowledge, empty dynamic
    // state.
    let mut platform = Platform::paper_use_case();

    // The dashboard would subscribe to this topic over the socket; we
    // subscribe directly.
    let dashboard_feed = platform.broker().subscribe("cais.rioc.published");

    // An advisory arrives from an OSINT feed (twice — feeds repeat
    // themselves; the deduplicator handles it).
    let now = platform.context().now;
    let advisory = FeedRecord::new(
        Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
        ThreatCategory::VulnerabilityExploitation,
        "nvd-feed",
        now.add_days(-100),
    )
    .with_cve("CVE-2017-9805")
    .with_description("remote code execution in apache struts");

    let report = platform.ingest_feed_records(vec![advisory.clone(), advisory])?;
    println!("ingestion report: {report:?}");

    // The reduced IoC reached the dashboard topic with its score.
    while let Some(message) = dashboard_feed.try_recv() {
        let rioc: ReducedIoc = message.decode().expect("rIoC payload");
        println!(
            "rIoC: cve={} score={:.4} priority={} nodes={:?}",
            rioc.cve.as_deref().unwrap_or("-"),
            rioc.threat_score,
            rioc.priority_label(),
            rioc.nodes,
        );
    }

    // The enriched IoC is stored in the MISP instance, exportable in
    // every registered format.
    let eioc = &platform.eiocs()[0];
    let event_id = eioc.misp_event_id.expect("persisted");
    let stix = platform
        .misp()
        .export_event(event_id, "stix2")?
        .expect("stix2 module installed");
    println!(
        "\nSTIX 2.0 export ({} bytes):\n{}",
        stix.len(),
        &stix[..stix.len().min(400)]
    );
    Ok(())
}
